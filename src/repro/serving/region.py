"""Sharded region control plane: D dispatcher shards behind one router.

A single :class:`~repro.serving.replica.MultiReplicaSystem` scales its
*fleet*, but its dispatcher stays one global object: one admission queue,
one routing decision per arrival over the whole fleet.  At region scale
(hundreds of replicas) that centralization is both a simulated bottleneck
(every arrival contends on one queue) and a modelling gap — real serving
regions run several dispatcher cells, each owning a slice of the fleet.

:class:`ServingRegion` models that control plane:

* **D dispatcher shards**, each a full ``MultiReplicaSystem`` (its own
  global queue, SLO admission, autoscaler, fault injector) on one shared
  simulated clock.
* **A thin region router** keys each arrival to a home shard — by a
  multiplicative hash of its adapter id (``shard_key="hash"``, the
  default) or of its tenant id (``shard_key="tenant"``, pinning each
  tenant's traffic and adapter residency to one shard).
* **Cross-shard load shedding ("spill")**: an arrival finding its home
  shard unable to admit immediately is offered to the least-loaded
  sibling shard with headroom, instead of queueing (or shedding) at home
  while a neighbor idles.
* **Work stealing**: whenever a capacity-freeing event (finish, replica
  activation, stall end) leaves a shard able to admit, it pulls queued
  requests from the most-backlogged sibling (FIFO head first, so
  cross-shard service stays roughly arrival-ordered) until it is full
  again or no sibling's backlog reaches ``steal_threshold``.
* **A shared GPU budget** (:class:`SharedGpuBudget`): per-shard
  autoscalers coordinate through one region-wide pool — a shard may only
  scale out into GPUs no sibling currently holds, so a hot shard can
  burst into the budget a cold one is not using.

A 1-shard region is the degenerate case: the router always picks shard 0,
spill has no siblings, stealing registers no hooks, and the run is
bit-for-bit identical to the bare ``MultiReplicaSystem`` it wraps (the
property suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.summary import RunSummary, summarize_run
from repro.serving.replica import MultiReplicaSystem
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState

#: Seed stride between dispatcher shards: shard ``i`` builds its system
#: with ``seed + i * SHARD_SEED_STRIDE``, so per-replica streams never
#: collide across shards (a shard holds far fewer than this many replicas)
#: and shard 0 keeps the caller's seed exactly — the 1-shard region is
#: byte-identical to the bare system.
SHARD_SEED_STRIDE = 100_003

#: Knuth's multiplicative hash constant (2^32 / phi, odd): spreads the
#: small dense integer keys (adapter ids, tenant ids) across shards far
#: better than a bare modulo, which would map adapters 0..D-1 to shards
#: 0..D-1 in order and alias any stride-D structure in the key space.
_HASH_MULT = 2_654_435_761
_HASH_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class RegionConfig:
    """Knobs of the sharded region control plane.

    Attributes:
        n_shards: Dispatcher shards (each a full ``MultiReplicaSystem``).
        shard_key: ``"hash"`` routes on the adapter id (base-model
            requests fall back to the request id), ``"tenant"`` on the
            tenant id — pinning a tenant's adapters to one shard's cache.
            Requests missing the chosen key fall back down the chain
            (tenant -> adapter -> request id), so routing is always total.
        spill: Offer an arrival whose home shard cannot admit immediately
            to the least-loaded sibling with headroom (cross-shard load
            shedding).  Off, arrivals always queue/shed at home.
        steal: Let a shard with fresh headroom pull queued work from
            backlogged siblings (work stealing).  Off, queues drain only
            locally.
        steal_threshold: Minimum sibling backlog (queued requests) worth
            stealing from — below it the migration overhead is not worth
            the rebalance, and a threshold of 1 would ping-pong single
            requests between shards.
        gpu_budget: Optional region-wide GPU pool size shared by the
            per-shard autoscalers (requires ``autoscale``); ``None``
            leaves each shard bounded only by its own ``max_replicas``.
    """

    n_shards: int = 2
    shard_key: str = "hash"
    spill: bool = True
    steal: bool = True
    steal_threshold: int = 2
    gpu_budget: Optional[int] = None

    SHARD_KEYS = ("hash", "tenant")

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.shard_key not in self.SHARD_KEYS:
            raise ValueError(
                f"unknown shard_key {self.shard_key!r}; "
                f"pick from {self.SHARD_KEYS}")
        if self.steal_threshold < 1:
            raise ValueError(
                f"steal_threshold must be >= 1, got {self.steal_threshold}")
        if self.gpu_budget is not None and self.gpu_budget < self.n_shards:
            raise ValueError(
                f"gpu_budget ({self.gpu_budget}) must cover at least one "
                f"GPU per shard ({self.n_shards})")


@dataclass
class RegionStats:
    """Region-router telemetry (shard routing, spills, steals)."""

    arrivals: int = 0            # every request offered to the region
    cross_shard_spills: int = 0  # arrivals served away from their home shard
    steals: int = 0              # queued requests pulled by a sibling shard
    routed: list = field(default_factory=list)  # arrivals landed per shard


class SharedGpuBudget:
    """A region-wide GPU pool the per-shard autoscalers draw from.

    Each shard's controller ``report``\\ s its current holdings under its
    own key (every tick, and immediately after provisioning), and caps any
    scale-out at ``available()`` — the pool minus every shard's claim.
    The pool is *reconciled*, not reserved: holdings freed by retirement
    or failure return to the pool the moment the owning shard next
    reports, so a hot shard can burst into capacity a cold one released
    within one control period.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"budget capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._held: dict[int, int] = {}

    def report(self, key: int, holding: int) -> None:
        """Refresh one shard's claim on the pool (absolute, not a delta)."""
        self._held[key] = holding

    def held(self) -> int:
        """GPUs currently claimed across every reporting shard."""
        return sum(self._held.values())

    def available(self) -> int:
        """GPUs no shard currently claims (never negative: a shard whose
        static fleet already exceeds its share can keep it — the pool only
        refuses *growth*)."""
        return max(0, self.capacity - self.held())


class ServingRegion:
    """D dispatcher shards on one clock, behind a thin region router.

    Build with :meth:`build`; drive with :meth:`run_trace` (or schedule
    :meth:`dispatch` per arrival on the shared clock).  The per-request
    admission path stays O(1) in the fleet: the router hashes to a home
    shard, and each shard's dispatcher works its own O(log n) indices over
    its own slice of the fleet.
    """

    def __init__(self, systems: list[MultiReplicaSystem],
                 config: RegionConfig, sim: Simulator,
                 budget: Optional[SharedGpuBudget] = None) -> None:
        if len(systems) != config.n_shards:
            raise ValueError(
                f"got {len(systems)} shard systems for "
                f"n_shards={config.n_shards}")
        self.systems = systems
        self.config = config
        self.sim = sim
        self.budget = budget
        self.stats = RegionStats(routed=[0] * config.n_shards)
        #: Guards the steal loop against re-entry: accepting a stolen
        #: request can finish work synchronously in degenerate tests and
        #: re-fire the capacity hook mid-steal.
        self._stealing = False
        #: Observability hook (see repro.obs): ``None`` keeps every
        #: spill/steal hook site a bare attribute check.
        self._tracer = None
        if config.steal and config.n_shards > 1:
            for index, system in enumerate(self.systems):
                system.cluster.on_capacity(
                    lambda thief=index: self._steal_into(thief))

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` region-wide: shard ``i``'s
        dispatcher lands on track ``i + 1`` and its replicas on tids
        ``1000 * (i + 1) + index``, so the Perfetto view groups every
        replica under its shard.  Spill/steal decisions are annotated on
        the shards they move work between."""
        self._tracer = tracer
        for index, system in enumerate(self.systems):
            system.attach_tracer(tracer, shard=index)

    def attach_metrics(self, registry) -> None:
        """Register every shard's gauges on ``registry``, namespaced
        ``s0_``, ``s1_``, ... (one registry, one merged timeseries)."""
        for index, system in enumerate(self.systems):
            system.cluster.attach_metrics(registry, prefix=f"s{index}_")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, preset: str, n_replicas: Optional[int] = None,
              dispatch_policy: str = "least_loaded", *,
              region: Optional[RegionConfig] = None,
              seed: int = 0, **build_kwargs) -> "ServingRegion":
        """Build ``region.n_shards`` dispatcher shards on one shared clock.

        ``n_replicas`` is the *per-shard* fleet size; every other keyword
        is forwarded to each shard's
        :meth:`MultiReplicaSystem.build <repro.serving.replica.MultiReplicaSystem.build>`
        unchanged (``autoscale``, ``slo_policy``, ``registry``, ...).
        Shard ``i`` seeds at ``seed + i * SHARD_SEED_STRIDE`` so its
        dispatch RNG and per-replica streams are decorrelated from its
        siblings'; shard 0 keeps ``seed`` itself.  With
        ``region.gpu_budget`` set (requires ``autoscale``), every shard's
        controller is attached to one :class:`SharedGpuBudget`.
        """
        config = region if region is not None else RegionConfig()
        budget: Optional[SharedGpuBudget] = None
        if config.gpu_budget is not None:
            if build_kwargs.get("autoscale") is None:
                raise ValueError(
                    "gpu_budget needs autoscale: a static fleet never "
                    "draws from the pool")
            budget = SharedGpuBudget(config.gpu_budget)
        sim = Simulator()
        systems = []
        for index in range(config.n_shards):
            kwargs = dict(build_kwargs)
            if budget is not None:
                kwargs["autoscale_budget"] = budget
                kwargs["autoscale_budget_key"] = index
            systems.append(MultiReplicaSystem.build(
                preset, n_replicas=n_replicas,
                dispatch_policy=dispatch_policy, sim=sim,
                seed=seed + index * SHARD_SEED_STRIDE, **kwargs))
        return cls(systems, config, sim, budget=budget)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def dispatch(self, request) -> Optional[int]:
        """Route one arrival: hash to its home shard, spilling to the
        least-loaded admitting sibling when the home shard would queue or
        shed it.  Returns the home (or spill-target) shard index; the
        request may still be queued or shed *within* that shard."""
        self.stats.arrivals += 1
        home = self._shard_of(request)
        if self.config.spill and self.config.n_shards > 1 \
                and not self.systems[home].cluster.can_admit():
            target = self._spill_target(home)
            if target is not None:
                self.stats.cross_shard_spills += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "spill", self.sim.now, home + 1,
                        request_id=request.request_id,
                        from_shard=home, to_shard=target)
                self.stats.routed[target] += 1
                self.systems[target].cluster.dispatch(request)
                return target
        self.stats.routed[home] += 1
        self.systems[home].cluster.dispatch(request)
        if self.config.steal and self.config.n_shards > 1 and \
                self.systems[home].cluster.queue_len() \
                >= self.config.steal_threshold:
            # A fully idle sibling generates no capacity events of its own
            # (nothing in flight means nothing ever finishes there), so a
            # backlog crossing the steal threshold prods the least-loaded
            # admitting sibling to pull queued work now.
            target = self._spill_target(home)
            if target is not None:
                self._steal_into(target)
        return home

    def _shard_of(self, request) -> int:
        """Home shard of a request: a multiplicative hash of its routing
        key.  ``shard_key="tenant"`` keys on the tenant id, falling back
        to the adapter id and then the request id when absent (routing
        must be total); ``"hash"`` skips straight to the adapter chain."""
        key = None
        if self.config.shard_key == "tenant":
            key = request.tenant_id
        if key is None:
            key = request.adapter_id
        if key is None:
            key = request.request_id
        return ((key * _HASH_MULT) & _HASH_MASK) % self.config.n_shards

    def _spill_target(self, home: int) -> Optional[int]:
        """Least-loaded sibling shard that can admit immediately (ties
        break to the lowest shard index), or ``None`` when every sibling
        is full too — the arrival then queues/sheds at home, exactly as
        it would without a region."""
        best: Optional[int] = None
        best_load = 0
        for index, system in enumerate(self.systems):
            if index == home:
                continue
            cluster = system.cluster
            if not cluster.can_admit():
                continue
            load = cluster.total_in_flight()
            if best is None or load < best_load:
                best, best_load = index, load
        return best

    # ------------------------------------------------------------------ #
    # Work stealing
    # ------------------------------------------------------------------ #
    def _steal_into(self, thief: int) -> None:
        """Pull queued work into shard ``thief`` while it has headroom and
        some sibling's backlog reaches ``steal_threshold`` (the donor is
        the most-backlogged sibling; ties break to the lowest index)."""
        if self._stealing:
            return
        self._stealing = True
        try:
            cluster = self.systems[thief].cluster
            threshold = self.config.steal_threshold
            while cluster.can_admit():
                donor: Optional[int] = None
                backlog = threshold - 1  # strict > enforces the threshold
                for index, system in enumerate(self.systems):
                    if index == thief:
                        continue
                    queued = system.cluster.queue_len()
                    if queued > backlog:
                        donor, backlog = index, queued
                if donor is None:
                    return
                entry = self.systems[donor].cluster.donate_queued()
                if entry is None:
                    return  # defensive: the donor's queue emptied under us
                self.stats.steals += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "steal", self.sim.now, thief + 1,
                        request_id=entry[0].request_id,
                        donor=donor, thief=thief)
                cluster.accept_stolen(entry)
        finally:
            self._stealing = False

    # ------------------------------------------------------------------ #
    # Running and accounting
    # ------------------------------------------------------------------ #
    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        """Schedule every arrival through the region router and run."""
        last_arrival = 0.0
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run; "
                    "use Trace.fresh()")
            last_arrival = max(last_arrival, request.arrival_time)
            self.sim.schedule_at(request.arrival_time, self.dispatch, request)
        until = horizon if horizon is not None else last_arrival
        for system in self.systems:
            if system.autoscaler is not None:
                system.autoscaler.start(until=until)
            if system.fault_injector is not None:
                system.fault_injector.start(until=until)
        self.sim.run(until=horizon)

    def all_requests(self) -> list[Request]:
        """Every arrival across every shard (dispatched, still queued, or
        shed) — region accounting must not lose any of them."""
        return [request for system in self.systems
                for request in system.all_requests()]

    def total_replicas(self) -> int:
        """Replicas currently holding a GPU across the region."""
        return sum(system.cluster.holding_count() for system in self.systems)

    def summary(self, **kwargs) -> RunSummary:
        """Region-wide :class:`RunSummary` with shard telemetry in
        ``extra``: per-shard routed arrivals and shed counts, the router's
        spill and steal totals, cross-shard queue-handoff counts, and the
        routed-arrival imbalance (max/mean over shards).  With a tenant
        fairness policy on the shards, the per-tenant block (attainment
        spread, Jain index, quota work) is computed region-wide — each
        tenant's ledgers merged across every shard its requests touched
        (spill and steal move work between shards, so only the merged view
        is conserved)."""
        requests = self.all_requests()
        summary = summarize_run(requests, **kwargs)
        routed = list(self.stats.routed)
        mean_routed = sum(routed) / len(routed)
        summary.extra.update(
            region_shards=self.config.n_shards,
            region_arrivals=self.stats.arrivals,
            shard_arrivals=routed,
            shard_imbalance=(
                max(routed) / mean_routed if mean_routed > 0
                else float("nan")),
            cross_shard_spills=self.stats.cross_shard_spills,
            cross_shard_steals=self.stats.steals,
            shard_shed=[system.cluster.stats.shed
                        for system in self.systems],
            shard_donated=[system.cluster.stats.donated
                           for system in self.systems],
            shard_stolen=[system.cluster.stats.stolen
                          for system in self.systems],
        )
        if any(system.cluster.tenancy is not None
               for system in self.systems):
            self._tenant_block(summary.extra, requests,
                               kwargs.get("warmup", 0.0))
        return summary

    def _tenant_block(self, extra: dict, requests, warmup: float) -> None:
        """Region-wide per-tenant fairness accounting (same keys as the
        single-system block in ``MultiReplicaSystem._tenant_block``, with
        every tenant's per-shard ledgers summed)."""
        from repro.metrics.summary import jain_fairness_index, tenant_breakdown

        slo_policy = self.systems[0].slo_policy
        attained = slo_policy.attained if slo_policy is not None else None
        breakdown = tenant_breakdown(requests, warmup=warmup,
                                     attained=attained)
        tenant_ids = breakdown["tenant_ids"]
        throttles, borrows, virtual_times, weights = [], [], [], []
        for tenant in tenant_ids:
            throttled = borrowed = 0
            virtual_time, weight = 0.0, 1.0
            for system in self.systems:
                book = system.cluster.stats.tenants.get(tenant)
                if book is not None:
                    throttled += book.throttled
                    borrowed += book.borrowed
                    virtual_time += book.virtual_time
                    weight = book.weight  # identical on every shard
            throttles.append(throttled)
            borrows.append(borrowed)
            virtual_times.append(virtual_time)
            weights.append(weight)
        attainment = [a for a in breakdown["attainment"] if a == a]
        extra.update(
            tenant_ids=tenant_ids,
            tenant_arrivals=breakdown["arrivals"],
            tenant_completed=breakdown["completed"],
            tenant_shed=breakdown["shed"],
            tenant_lost=breakdown["lost"],
            tenant_attainment=breakdown["attainment"],
            tenant_attainment_spread=(
                max(attainment) - min(attainment) if attainment
                else float("nan")),
            tenant_fairness_jain=jain_fairness_index(attainment),
            tenant_quota_throttles=throttles,
            tenant_quota_borrows=borrows,
            tenant_virtual_time=virtual_times,
            tenant_weights=weights,
        )
