"""The continuous-batching serving engine.

One engine owns one model replica: a GPU (or TP group), a host link, an
adapter manager and a scheduling policy.  It implements iteration-level
scheduling exactly as §2 describes: on every iteration the batch is updated —
finished requests leave, the policy admits new ones — and the iteration's
latency is computed by the calibrated cost model from the batch composition
(prefill work + decode step).

Key behaviours reproduced from the paper:

* Admission reserves KV-cache memory; the Cache Manager is asked to evict
  idle adapters when the reservation does not fit (§4.2.1 "dynamic cache
  sizing" — the cache shrinks exactly when serving state needs bytes).
* An admitted request whose adapter is still in flight waits in a
  ``pending_load`` set; the transfer time it waits is the *adapter loading
  latency on the critical path* (Figure 14).
* Optional chunked prefill (Sarathi-style): a per-iteration prefill-token
  budget, with decode always included (the Figure 8 "Chunk-Prefill" baseline).
* Opportunistic-bypass squashing (§4.3.3): the scheduler may remove a
  running request, rolling back all progress, to re-admit a bypassed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import GB, GpuDevice
from repro.hardware.pcie import PcieLink
from repro.llm.costmodel import CostModel
from repro.llm.model import ModelSpec
from repro.metrics.summary import RunSummary, summarize_run
from repro.predictor.output_length import OutputLengthPredictor
from repro.serving.admission import AdmissionContext, AdmitResult
from repro.serving.adapter_manager import AdapterManagerBase, AdapterState
from repro.serving.schedulers import Scheduler
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


@dataclass
class EngineConfig:
    """Engine-level knobs (shared by every system variant)."""

    #: Cap on concurrently-admitted requests (running + waiting on adapters).
    #: High enough that GPU memory — translated into scheduling tokens — is
    #: the binding resource, as in the paper's testbed.
    max_batch_size: int = 256
    #: Per-iteration prefill token budget with request *splitting* (Sarathi
    #: chunked prefill); ``None`` disables splitting.  When set, it replaces
    #: ``prefill_token_budget`` as the iteration budget.
    chunk_size: Optional[int] = None
    #: Per-iteration cap on *whole-request* prefill tokens (vLLM/S-LoRA's
    #: ``max_num_batched_tokens``).  Requests past the budget stay admitted
    #: but start prefill in a later iteration, in batch order — this is what
    #: makes admission order matter and produces FIFO's head-of-line
    #: blocking.  An oversized request runs alone.
    prefill_token_budget: int = 4096
    #: Memory set aside for activations/workspace, never usable by KV or cache.
    activation_reserve_bytes: int = 1 * GB
    #: Interval of GPU-memory telemetry samples; ``None`` disables sampling.
    memory_telemetry_interval: Optional[float] = None
    #: Record ``(time, batch_size)`` at each iteration start into
    #: ``engine.batch_occupancy`` (for time-series diagnostics).
    record_batch_occupancy: bool = False
    #: Effective rate at which adapter copies steal engine time.  Host-to-GPU
    #: adapter loads in S-LoRA synchronize with the execution stream, so a
    #: transfer that completes while the engine is busy delays the pipeline by
    #: roughly ``bytes / load_stall_bandwidth`` (stream syncs + paged copies
    #: make this slower than the raw link).  This is the §3.2 mechanism that
    #: makes frequent adapter loading degrade *throughput*, not just TTFT.
    #: ``None`` disables stall accounting (ideal fully-async copies).
    #: Calibrated so the S-LoRA baseline's SLO-crossing load sits ~1.5x below
    #: Chameleon's, the paper's Figure 11 headline (see abl_load_stall for
    #: the sensitivity of the result to this constant).
    load_stall_bandwidth: Optional[float] = 2.0 * GB


@dataclass
class EngineStats:
    """Run counters the experiments report."""

    iterations: int = 0
    busy_time: float = 0.0
    stall_time: float = 0.0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    squashes: int = 0
    admissions: int = 0


class ServingEngine:
    """One LLM replica with continuous batching (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        gpu: GpuDevice,
        link: PcieLink,
        model: ModelSpec,
        cost_model: CostModel,
        registry: AdapterRegistry,
        scheduler: Scheduler,
        adapter_manager: AdapterManagerBase,
        predictor: Optional[OutputLengthPredictor] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.sim = sim
        self.gpu = gpu
        self.link = link
        self.model = model
        self.cost_model = cost_model
        self.registry = registry
        self.scheduler = scheduler
        self.adapter_manager = adapter_manager
        self.predictor = predictor
        # A fresh config per engine: a shared default instance would alias
        # mutable knobs across every engine in a cluster.
        self.config = config if config is not None else EngineConfig()
        self.stats = EngineStats()

        self._running: list[Request] = []
        self._pending_load: list[Request] = []
        self._finish_callbacks: list = []
        self._load_callbacks: list = []
        self._iteration_event = None
        self._last_decode_step_time = 0.02  # seed for release-time estimates
        self._pending_stall = 0.0           # engine time owed to adapter copies
        self.all_requests: list[Request] = []
        self.batch_occupancy: list[tuple[float, int]] = []
        self.failed = False                 # crashed by fault injection
        #: Observability hook (see repro.obs): ``None`` means tracing is
        #: off and every hook site is a single attribute check.  The
        #: cluster's ``attach_tracer`` sets both after construction.
        self._tracer = None
        self._trace_tid = 0
        #: Degrade-fault service-rate multiplier (1.0 = healthy; 0.5 = every
        #: iteration takes twice as long).  Exactly 1.0 leaves the iteration
        #: cost path untouched, bit for bit.
        self._rate_multiplier = 1.0

        # Static reservations: base weights + activation workspace.
        self.gpu.reserve("weights", model.weight_bytes)
        self.gpu.reserve("activations", self.config.activation_reserve_bytes)
        if self.config.memory_telemetry_interval is not None:
            self.gpu.enable_telemetry(self.config.memory_telemetry_interval)

        self.adapter_manager.on_ready(self._on_adapter_ready)

    # ------------------------------------------------------------------ #
    # Capacity views
    # ------------------------------------------------------------------ #
    @property
    def total_token_capacity(self) -> int:
        """Scheduling tokens available system-wide (§4.3.5's Tok_total)."""
        usable = self.gpu.capacity - self.model.weight_bytes - self.config.activation_reserve_bytes
        return max(0, usable // self.model.kv_bytes_per_token)

    def adapter_token_cost(self, adapter_id: Optional[int]) -> int:
        """An adapter's memory footprint expressed in scheduling tokens."""
        if adapter_id is None:
            return 0
        size = self.registry.get(adapter_id).size_bytes
        return -(-size // self.model.kv_bytes_per_token)  # ceil division

    def in_flight_count(self) -> int:
        return len(self._running) + len(self._pending_load) + self.scheduler.queue_len()

    def capability(self) -> float:
        """Relative serving throughput of this replica (arbitrary units).

        The geometric mean of peak compute (bounds prefill) and HBM
        bandwidth (bounds decode), scaled by the TP compute speedup — a
        single scalar a heterogeneity-aware dispatcher can use to normalize
        load probes across mixed GPU specs.  Only ratios between replicas
        matter; the cluster renormalizes to mean 1.0.
        """
        spec = self.gpu.spec
        speedup = getattr(self.gpu, "compute_speedup", 1.0)
        return float(
            (spec.peak_tflops * spec.mem_bandwidth_bytes) ** 0.5) * speedup

    def is_saturated(self) -> bool:
        """True when in-flight work (batch + local queue) is at
        ``max_batch_size`` — a request submitted now could not be admitted
        before a finish event, so a global dispatcher with backpressure
        should hold it in the cluster queue instead (§4.4)."""
        return self.in_flight_count() >= self.config.max_batch_size

    def in_flight_token_load(self) -> float:
        """In-flight work in *tokens*: remaining prefill plus predicted
        remaining decode across running, loading and locally-queued requests.

        Token-weighted dispatch uses this instead of :meth:`in_flight_count`
        so a replica holding a few huge requests is not mistaken for idle.
        Falls back to the true output length when no prediction exists.
        """
        total = 0.0
        for request in self._running + self._pending_load:
            predicted = request.predicted_output_tokens or request.output_tokens
            total += request.remaining_prefill_tokens
            total += max(0, predicted - request.tokens_generated)
        for request in self.scheduler.queued_requests():
            predicted = request.predicted_output_tokens or request.output_tokens
            total += request.input_tokens + predicted
        return total

    def on_finish(self, callback) -> None:
        """Register a hook fired after each request completes.

        The data-parallel cluster uses this for pull-based dispatch: a finish
        event frees batch capacity, so the global queue can drain into it.
        """
        self._finish_callbacks.append(callback)

    def on_load_change(self, callback) -> None:
        """Register a hook fired whenever this engine's in-flight token
        load may have changed (submission, iteration progress, adapter
        promotion, squash, crash evacuation).

        The token-weighted dispatch index uses this to mirror
        :meth:`in_flight_token_load` into a cluster-side cache: token loads
        drift as tokens generate, so without a change notification every
        dispatch probe would have to walk the batch live.  The hook fires
        *after* the engine's state is consistent — a callback reading
        :meth:`in_flight_token_load` sees the post-event value.  Engines
        with no registered callback pay one predicate check per event.
        """
        self._load_callbacks.append(callback)

    def _notify_load_change(self) -> None:
        for callback in self._load_callbacks:
            callback()

    def request_rank(self, request: Request) -> Optional[int]:
        if request.adapter_id is None:
            return None
        return self.registry.get(request.adapter_id).rank

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> None:
        """Accept a request at the current simulated time."""
        if self.failed:
            raise RuntimeError("cannot submit to a FAILED engine")
        now = self.sim.now
        request.enqueue_time = now
        request.state = RequestState.QUEUED
        if self.predictor is not None and request.predicted_output_tokens is None:
            self.predictor.annotate(request)
        self.all_requests.append(request)
        self.scheduler.enqueue(request, now)
        self.adapter_manager.on_request_arrival(request)
        self._kick()
        if self._load_callbacks:
            self._notify_load_change()

    def run_trace(self, requests: Iterable[Request], horizon: Optional[float] = None) -> None:
        """Schedule every request's arrival and run the simulation.

        Without a ``horizon`` the simulation runs until the event heap drains
        (all requests finished and all transfers complete).
        """
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run through an "
                    "engine; use Trace.fresh() to replay a trace"
                )
            self.sim.schedule_at(request.arrival_time, self.submit, request)
        if self.config.memory_telemetry_interval is not None and horizon is not None:
            self._schedule_memory_sampling(horizon)
        self.sim.run(until=horizon)

    def summary(self, **kwargs) -> RunSummary:
        return summarize_run(self.all_requests, **kwargs)

    # ------------------------------------------------------------------ #
    # Admission (called through AdmissionContext.try_admit)
    # ------------------------------------------------------------------ #
    def admit(self, request: Request) -> AdmitResult:
        if request.state not in (RequestState.QUEUED, RequestState.CREATED):
            raise RuntimeError(f"request {request.request_id} is not admissible ({request.state})")
        if len(self._running) + len(self._pending_load) >= self.config.max_batch_size:
            return AdmitResult.BATCH_FULL

        kv_bytes = (request.input_tokens + request.output_tokens) * self.model.kv_bytes_per_token
        adapter_id = request.adapter_id
        adapter_bytes_needed = 0
        if adapter_id is not None:
            entry_state = self.adapter_manager.entry(adapter_id).state
            if entry_state is AdapterState.MISSING:
                adapter_bytes_needed = self.registry.get(adapter_id).size_bytes

        needed = kv_bytes + adapter_bytes_needed
        if self.gpu.free_bytes < needed:
            exclude = {adapter_id} if adapter_id is not None else None
            self.adapter_manager.make_room(needed, exclude=exclude)
            if self.gpu.free_bytes < needed:
                if self.gpu.free_bytes < kv_bytes:
                    return AdmitResult.NO_MEMORY
                return AdmitResult.NO_ADAPTER_ROOM

        self.gpu.reserve("kv", kv_bytes)
        request.kv_reserved_bytes = kv_bytes
        if request.admit_time is None:
            request.admit_time = self.sim.now
        self.stats.admissions += 1

        if adapter_id is not None:
            status = self.adapter_manager.acquire(adapter_id)
            if status is AdapterState.LOADING:
                request.state = RequestState.LOADING
                self._pending_load.append(request)
                return AdmitResult.ADMITTED
        self._begin_prefill(request)
        return AdmitResult.ADMITTED

    def _begin_prefill(self, request: Request) -> None:
        now = self.sim.now
        request.state = RequestState.PREFILL
        # prefill_start_time is stamped when the first prefill chunk is
        # actually planned (the per-iteration budget can defer it).
        if request.adapter_ready_time is None:
            request.adapter_ready_time = now
        self._running.append(request)

    # ------------------------------------------------------------------ #
    # Squashing (§4.3.3)
    # ------------------------------------------------------------------ #
    def squash(self, request: Request) -> None:
        """Abort a running/loading request and roll back all its progress."""
        if request in self._running:
            self._running.remove(request)
        elif request in self._pending_load:
            self._pending_load.remove(request)
        else:
            raise RuntimeError(f"cannot squash request {request.request_id}: not in flight")
        self._rollback(request)
        request.squash_count += 1
        request.state = RequestState.QUEUED
        self.stats.squashes += 1
        self.scheduler.requeue_front(request, self.sim.now)

    def _rollback(self, request: Request) -> None:
        """Release a request's resources and wipe its serving progress."""
        self.gpu.release("kv", request.kv_reserved_bytes)
        request.kv_reserved_bytes = 0
        if request.adapter_id is not None:
            self.adapter_manager.release(request.adapter_id)
        request.tokens_generated = 0
        request.prefill_done_tokens = 0
        request.token_times.clear()
        request.first_token_time = None
        request.prefill_start_time = None
        request.adapter_ready_time = None

    # ------------------------------------------------------------------ #
    # Faults: crash evacuation and degrade multipliers
    # ------------------------------------------------------------------ #
    def set_rate_multiplier(self, multiplier: float) -> None:
        """Degrade (or recover) the replica's service rate.

        ``multiplier`` scales throughput: 0.5 makes every iteration take
        twice as long (thermal throttling, a noisy neighbour, a half-broken
        NVLink).  The :class:`ObservedCapabilityEstimator` sees the slower
        finish rate and shifts routing weight away — that convergence is the
        contract the ``degrade`` fault relies on.
        """
        if multiplier <= 0:
            raise ValueError(f"rate multiplier must be > 0, got {multiplier}")
        self._rate_multiplier = multiplier

    @property
    def rate_multiplier(self) -> float:
        return self._rate_multiplier

    def fail(self, *, migrate: bool = True, retry_started: bool = True
             ) -> tuple[list, list]:
        """Crash this replica; partition its work into (recoverable, lost).

        The engine stops dead: the in-flight iteration is aborted (its
        callback is cancelled by the cluster via ``Simulator.cancel_if``)
        and no future submission or adapter-ready event does anything.

        With ``migrate=True``, work that can be replayed elsewhere is rolled
        back to a fresh pre-submission state and *removed from this engine's
        accounting* (the cluster re-dispatches it, so it must not be counted
        twice): the local scheduler queue, admitted requests still waiting
        on adapter loads, and admitted requests whose prefill never started.
        Requests already being served (prefill begun or tokens emitted) are
        recoverable only under ``retry_started=True`` — the client-retry
        model, where partial progress is discarded and the request replays
        from scratch.  With ``retry_started=False`` they are stranded:
        marked ``lost``, kept in ``all_requests`` with their timeline frozen
        at the crash.  ``migrate=False`` strands everything (the
        no-recovery baseline).
        """
        if self.failed:
            return [], []
        self.failed = True
        if self._iteration_event is not None:
            self.sim.cancel(self._iteration_event)
            self._iteration_event = None
        self._pending_stall = 0.0
        queued = self.scheduler.drain()
        loading = list(self._pending_load)
        self._pending_load.clear()
        started, unstarted = [], []
        for request in self._running:
            if request.prefill_start_time is None and \
                    request.tokens_generated == 0:
                unstarted.append(request)
            else:
                started.append(request)
        self._running.clear()
        admitted = loading + unstarted + (started if retry_started else [])
        if migrate:
            recoverable = admitted + queued
            lost = [] if retry_started else started
        else:
            recoverable = []
            lost = loading + unstarted + started + queued
        admitted_ids = {id(r) for r in admitted}
        for request in recoverable:
            if id(request) in admitted_ids:  # holds KV/adapter; queued do not
                self._rollback(request)
            request.state = RequestState.CREATED
            request.enqueue_time = None
            request.admit_time = None
        self._forget(recoverable)
        for request in lost:
            request.lost = True
        if self._load_callbacks:
            self._notify_load_change()
        return recoverable, lost

    def _forget(self, requests: list) -> None:
        """Drop evacuated requests from this engine's accounting in one
        pass (they are re-counted wherever they land next; a per-request
        ``list.remove`` would scan the whole service history each time)."""
        if not requests:
            return
        evacuated = {id(r) for r in requests}
        self.all_requests = [
            r for r in self.all_requests if id(r) not in evacuated]

    def evacuate_unstarted(self) -> list:
        """Hand back work that has not started serving (drain migration).

        The local scheduler queue plus admitted requests still waiting on
        adapter loads or on their first prefill token are rolled back to a
        fresh pre-submission state and removed from this engine's
        accounting; started requests stay and finish normally.  Unlike
        :meth:`fail`, the engine remains alive — this is the voluntary
        half of work migration, used when a draining replica should not
        make its queued work wait out the drain.
        """
        queued = self.scheduler.drain()
        loading = list(self._pending_load)
        self._pending_load.clear()
        unstarted = [r for r in self._running
                     if r.prefill_start_time is None
                     and r.tokens_generated == 0]
        for request in unstarted:
            self._running.remove(request)
        for request in loading + unstarted:
            self._rollback(request)
        evacuated = loading + unstarted + queued
        for request in evacuated:
            request.state = RequestState.CREATED
            request.enqueue_time = None
            request.admit_time = None
        self._forget(evacuated)
        if self._load_callbacks:
            self._notify_load_change()
        return evacuated

    # ------------------------------------------------------------------ #
    # Scheduler-visible estimates
    # ------------------------------------------------------------------ #
    def estimate_service_time(self, request: Request) -> float:
        predicted = request.predicted_output_tokens
        if predicted is None:
            predicted = request.output_tokens
        return self.cost_model.estimate_service_time(
            request.input_tokens, predicted, self.request_rank(request)
        )

    def estimate_earliest_release(self) -> float:
        """Predicted seconds until some running request frees its memory."""
        best = float("inf")
        for request in self._running:
            predicted = request.predicted_output_tokens or request.output_tokens
            remaining_tokens = max(1, predicted - request.tokens_generated)
            est = remaining_tokens * self._last_decode_step_time
            if request.remaining_prefill_tokens > 0:
                est += self.cost_model.prefill_time(
                    request.remaining_prefill_tokens, self.request_rank(request)
                )
            best = min(best, est)
        return best

    # ------------------------------------------------------------------ #
    # The iteration loop
    # ------------------------------------------------------------------ #
    def _kick(self) -> None:
        if self._iteration_event is None and not self.failed:
            self._start_iteration()

    def _on_adapter_ready(self, adapter_id: int) -> None:
        if self.failed:
            return  # a transfer landing on a dead replica wakes nothing
        # A copy that lands while the engine is executing steals pipeline
        # time (stream synchronization); copies finishing into an idle engine
        # are free.  The debt is charged to the next iteration.
        stall_bw = self.config.load_stall_bandwidth
        if stall_bw is not None and self._iteration_event is not None:
            size = self.registry.get(adapter_id).size_bytes
            self._pending_stall += size / stall_bw
        self._promote_ready()
        self._kick()
        if self._load_callbacks:
            self._notify_load_change()

    def _promote_ready(self) -> None:
        still_waiting = []
        for request in self._pending_load:
            assert request.adapter_id is not None
            if self.adapter_manager.is_resident(request.adapter_id):
                now = self.sim.now
                admitted_at = request.admit_time if request.admit_time is not None else now
                request.adapter_load_critical_path = now - admitted_at
                self._begin_prefill(request)
            else:
                still_waiting.append(request)
        self._pending_load = still_waiting

    def _start_iteration(self) -> None:
        if self._iteration_event is not None:
            return
        now = self.sim.now
        self.scheduler.on_schedule(now)
        self.adapter_manager.set_queued_needed(self.scheduler.queued_adapter_ids())
        ctx = AdmissionContext(self)
        self.scheduler.select(ctx)
        self._promote_ready()

        prefill_plan = self._build_prefill_plan()
        for request, _tokens in prefill_plan:
            if request.prefill_start_time is None:
                request.prefill_start_time = now
        decode_set = [r for r in self._running if r.remaining_prefill_tokens == 0]

        if not prefill_plan and not decode_set:
            return  # idle; an arrival or adapter-ready event will wake us

        n_decode = len(decode_set)
        ctx_tokens = sum(r.context_tokens for r in decode_set)
        total_rank = 0
        n_lora = 0
        for r in decode_set:
            rank = self.request_rank(r)
            if rank is not None:
                total_rank += rank
                n_lora += 1
        prefill_work = [
            (tokens, self.request_rank(r)) for r, tokens in prefill_plan
        ]
        dt = self.cost_model.iteration_time(
            prefill_work, n_decode, ctx_tokens, total_rank, n_lora
        )
        if self._pending_stall > 0.0:
            dt += self._pending_stall
            self.stats.stall_time += self._pending_stall
            self._pending_stall = 0.0
        if self._rate_multiplier != 1.0:  # degrade fault: serve slower
            dt /= self._rate_multiplier
        if n_decode:
            self._last_decode_step_time = self.cost_model.decode_step_time(
                n_decode, ctx_tokens, total_rank, n_lora
            )
        if self.config.record_batch_occupancy:
            self.batch_occupancy.append((now, len(self._running)))
        self.stats.iterations += 1
        self.stats.busy_time += dt
        self.stats.prefill_tokens += sum(t for _, t in prefill_plan)
        self.stats.decode_tokens += n_decode
        self._iteration_event = self.sim.schedule(
            dt, self._end_iteration, prefill_plan, decode_set
        )

    def _build_prefill_plan(self) -> list[tuple[Request, int]]:
        """Choose this iteration's prefill work, in batch-admission order.

        With ``chunk_size`` set, requests are split into chunks under that
        budget (chunked prefill).  Otherwise whole requests are planned under
        ``prefill_token_budget``; the first request that does not fit stops
        the scan (strict order — admission order is the priority order), and
        an oversized request is granted a solo iteration.
        """
        chunked = self.config.chunk_size is not None
        budget = self.config.chunk_size if chunked else self.config.prefill_token_budget
        plan: list[tuple[Request, int]] = []
        for request in self._running:
            remaining = request.remaining_prefill_tokens
            if remaining <= 0:
                continue
            if chunked:
                if budget <= 0:
                    break
                take = min(budget, remaining)
                plan.append((request, take))
                budget -= take
            else:
                if remaining <= budget:
                    plan.append((request, remaining))
                    budget -= remaining
                elif not plan:
                    plan.append((request, remaining))  # oversized: run alone
                    budget = 0
                    break
                else:
                    break
        return plan

    def _end_iteration(self, prefill_plan: list, decode_set: list) -> None:
        self._iteration_event = None
        now = self.sim.now
        finished: list[Request] = []
        for request, tokens in prefill_plan:
            request.prefill_done_tokens += tokens
            if request.remaining_prefill_tokens == 0:
                request.tokens_generated = 1
                request.first_token_time = now
                request.token_times.append(now)
                request.state = RequestState.DECODE
                if request.output_tokens == 1:
                    finished.append(request)
        for request in decode_set:
            request.tokens_generated += 1
            request.token_times.append(now)
            if request.tokens_generated >= request.output_tokens:
                finished.append(request)
        if finished:
            for request in finished:
                self._finish(request, now)
            # One rebuild instead of a per-request ``list.remove`` scan: a
            # full batch finishing together used to cost O(batch^2).  Batch
            # order of the survivors is preserved.
            self._running = [
                r for r in self._running
                if r.state is not RequestState.FINISHED
            ]
        # Token loads moved (prefill progress, decode steps, finish removals):
        # refresh load listeners *before* the finish hooks below, whose queue
        # drain may route new work based on this engine's load.
        if self._load_callbacks:
            self._notify_load_change()
        # Fire finish hooks only after every finish of this iteration is
        # finalized: a hook may submit new work (cluster queue drain), which
        # kicks a fresh iteration — doing that mid-loop would let the new
        # iteration capture requests that are finished but not yet removed
        # from the batch, double-finishing them.
        for request in finished:
            for callback in self._finish_callbacks:
                callback(request)
        self.gpu.maybe_sample(now)
        self._start_iteration()
        if self._load_callbacks:  # the new iteration may have squashed work
            self._notify_load_change()

    def _finish(self, request: Request, now: float) -> None:
        """Finalize one completed request.  The caller removes it from
        ``_running`` (batched, one pass for the whole iteration)."""
        request.state = RequestState.FINISHED
        request.finish_time = now
        self.gpu.release("kv", request.kv_reserved_bytes)
        request.kv_reserved_bytes = 0
        if request.adapter_id is not None:
            self.adapter_manager.release(request.adapter_id)
        self.scheduler.on_finish(request, now)
        if self._tracer is not None:
            # The request's whole span waterfall (queue, adapter load,
            # prefill/decode, execute) is built here, from its timeline
            # stamps, so even a migrated request lands its spans on the
            # replica that actually finished it.
            self._tracer.record_request(request, self._trace_tid)

    # ------------------------------------------------------------------ #
    def _schedule_memory_sampling(self, horizon: float) -> None:
        interval = self.config.memory_telemetry_interval
        assert interval is not None

        def _sample() -> None:
            self.gpu.maybe_sample(self.sim.now)
            if self.sim.now + interval <= horizon:
                self.sim.schedule(interval, _sample)

        self.sim.schedule(0.0, _sample)
