"""The serving system: engine, schedulers, adapter managers, presets."""

from repro.serving.admission import AdmitResult, AdmissionContext
from repro.serving.schedulers import (
    Scheduler,
    FifoScheduler,
    SjfScheduler,
)
from repro.serving.adapter_manager import (
    AdapterState,
    AdapterEntry,
    AdapterManagerBase,
    SloraAdapterManager,
)
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.autoscaler import (
    Autoscaler,
    AutoscaleConfig,
    ObservedCapabilityEstimator,
)
from repro.serving.replica import (
    MultiReplicaSystem,
    ReplicaFactory,
    ReplicaHandle,
    ReplicaState,
)
from repro.serving.region import (
    RegionConfig,
    RegionStats,
    ServingRegion,
    SharedGpuBudget,
)

__all__ = [
    "MultiReplicaSystem",
    "ReplicaFactory",
    "ReplicaHandle",
    "ReplicaState",
    "Autoscaler",
    "AutoscaleConfig",
    "ObservedCapabilityEstimator",
    "AdmitResult",
    "AdmissionContext",
    "Scheduler",
    "FifoScheduler",
    "SjfScheduler",
    "AdapterState",
    "AdapterEntry",
    "AdapterManagerBase",
    "SloraAdapterManager",
    "EngineConfig",
    "ServingEngine",
    "ServingRegion",
    "RegionConfig",
    "RegionStats",
    "SharedGpuBudget",
]
