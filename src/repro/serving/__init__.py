"""The serving system: engine, schedulers, adapter managers, presets."""

from repro.serving.admission import AdmitResult, AdmissionContext
from repro.serving.schedulers import (
    Scheduler,
    FifoScheduler,
    SjfScheduler,
)
from repro.serving.adapter_manager import (
    AdapterState,
    AdapterEntry,
    AdapterManagerBase,
    SloraAdapterManager,
)
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.replica import MultiReplicaSystem

__all__ = [
    "MultiReplicaSystem",
    "AdmitResult",
    "AdmissionContext",
    "Scheduler",
    "FifoScheduler",
    "SjfScheduler",
    "AdapterState",
    "AdapterEntry",
    "AdapterManagerBase",
    "SloraAdapterManager",
    "EngineConfig",
    "ServingEngine",
]
