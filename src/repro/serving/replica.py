"""Data-parallel serving: N engines behind a two-level scheduler (§4.4).

With data parallelism, Chameleon "uses a two-level scheduler: a global
scheduler dispatches requests to the different engines, and each engine has
its local scheduler", and "replicates the adapter cache across engines"
(each replica manages its own cache of the shared adapter pool).

:class:`MultiReplicaSystem` builds N identical replicas of any system preset
on one shared simulated clock, dispatches arrivals through a
:class:`~repro.hardware.cluster.DataParallelCluster` policy, and aggregates
metrics across engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.cluster import DataParallelCluster
from repro.metrics.summary import RunSummary, summarize_run
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


@dataclass
class MultiReplicaSystem:
    """N data-parallel replicas of one serving-system preset."""

    replicas: list
    cluster: DataParallelCluster
    sim: Simulator

    @classmethod
    def build(
        cls,
        preset: str,
        n_replicas: int,
        dispatch_policy: str = "least_loaded",
        **build_kwargs,
    ) -> "MultiReplicaSystem":
        """Build ``n_replicas`` copies of ``preset`` on one shared clock.

        Accepts the same keyword arguments as
        :func:`repro.systems.build_system`.
        """
        from repro.systems import build_system  # local import: avoid cycle

        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        sim = Simulator()
        replicas = [
            build_system(preset, sim=sim, **build_kwargs)
            for _ in range(n_replicas)
        ]
        cluster = DataParallelCluster(
            [system.engine for system in replicas], policy=dispatch_policy
        )
        return cls(replicas=replicas, cluster=cluster, sim=sim)

    # ------------------------------------------------------------------ #
    @property
    def engines(self) -> list:
        return [system.engine for system in self.replicas]

    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        """Dispatch every arrival through the global scheduler and run."""
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run; "
                    "use Trace.fresh()"
                )
            self.sim.schedule_at(request.arrival_time, self.cluster.dispatch, request)
        self.sim.run(until=horizon)

    def all_requests(self) -> list[Request]:
        return [r for engine in self.engines for r in engine.all_requests]

    def summary(self, **kwargs) -> RunSummary:
        return summarize_run(self.all_requests(), **kwargs)

    def per_replica_counts(self) -> list[int]:
        """Completed requests per replica (load-balance diagnostics)."""
        return [
            sum(1 for r in engine.all_requests if r.finished)
            for engine in self.engines
        ]

    def mean_hit_rate(self) -> float:
        rates = [
            system.adapter_manager.stats.hit_rate for system in self.replicas
            if system.adapter_manager.stats.hits + system.adapter_manager.stats.misses
            + system.adapter_manager.stats.overlapped > 0
        ]
        return sum(rates) / len(rates) if rates else float("nan")
