"""Data-parallel serving: N engines behind a two-level scheduler (§4.4).

With data parallelism, Chameleon "uses a two-level scheduler: a global
scheduler dispatches requests to the different engines, and each engine has
its local scheduler", and "replicates the adapter cache across engines"
(each replica manages its own cache of the shared adapter pool).

:class:`MultiReplicaSystem` builds N identical replicas of any system preset
on one shared simulated clock, dispatches arrivals through a
:class:`~repro.hardware.cluster.DataParallelCluster` (global admission queue
with backpressure + routing policy), and aggregates metrics across engines.
Each replica derives its own RNG seed (``seed + i``) so predictor noise and
any other stochastic component are independent across the cluster — a shared
seed would correlate the errors and bias DP experiments.

Dispatch policies (``dispatch_policy=`` in :meth:`MultiReplicaSystem.build`):

=====================  =========================================================
policy                 routing rule
=====================  =========================================================
``round_robin``        cyclic assignment; load- and cache-oblivious
``least_loaded``       JSQ by in-flight request count
``p2c``                power-of-two-choices: sample 2 engines, join the less
                       loaded (near-JSQ balance with O(1) probes)
``token_weighted``     JSQ by in-flight *tokens* (remaining prefill +
                       predicted remaining decode), robust to size skew
``adapter_affinity``   least-loaded engine holding the adapter resident;
                       unbounded — a hot adapter can swamp one replica
``bounded_affinity``   adapter affinity until the affine replica's load
                       exceeds ``spill_factor`` x the cluster mean, then JSQ
=====================  =========================================================

Every load probe the table relies on is divided by the replica's relative
``capability()`` (compute x bandwidth, TP-scaled), so on a **heterogeneous
fleet** (``replica_specs=``, mixed GPU specs behind one dispatcher) the
load-following policies compare utilization, not raw backlog; pass
``normalize_capability=False`` to reproduce spec-oblivious routing.

On top of routing sits the **SLO admission lane** (``slo_policy=``, a
:class:`~repro.serving.admission.SloPolicy`): arrivals whose estimated
global-queue wait exceeds their TTFT deadline are shed (rejected with
accounting) or deprioritized into a low-priority lane drained only while
the FIFO lane is empty.  Goodput, shed rate and SLO attainment surface in
``summary().extra``.

**Elastic fleets**: the cluster is no longer fixed at construction time.
Every replica sits behind a :class:`ReplicaHandle` with an explicit
lifecycle (``PROVISIONING -> WARMING -> ACTIVE -> DRAINING -> RETIRED``);
only ACTIVE replicas are dispatch targets.  A :class:`ReplicaFactory` can
build replicas mid-run on the shared clock (heterogeneous scale-out specs
included), and an :class:`~repro.serving.autoscaler.Autoscaler`
(``autoscale=`` on :meth:`MultiReplicaSystem.build`) grows the fleet on
sustained shed-rate/queue-delay pressure and shrinks it on sustained
idleness, within ``[min_replicas, max_replicas]`` and under a cooldown.
In ``mode="predictive"`` the controller additionally feeds per-tick arrival
counts into an :class:`~repro.predictor.load_forecast.ArrivalRateForecaster`
and provisions *ahead* of forecast demand (the reactive path stays as the
safety net; scale-in stays reactive-only).  Draining replicas finish their
in-flight work but accept nothing new; provisioning replicas pay a
configurable cold-start delay before joining.  With ``autoscale=None`` (the
default) the fleet is static and behaves bit-for-bit as before.

**Fault tolerance** (:mod:`repro.faults`): replicas can crash (terminal
``FAILED`` state; queued and unstarted work migrates back through the
dispatcher, or is stranded as ``lost`` in the no-recovery model), degrade
(service-rate multiplier the observed-capability estimator converges to)
or stall (transient admission outage).  A self-healing autoscaler
(``AutoscaleConfig(self_heal=True)``, the default) replaces crashed
replicas outside the scale-out cooldown.  Availability, migration and
retry accounting appear in ``summary().extra`` only when a fault injector
is attached — fault-free configurations are byte-identical to before the
fault subsystem existed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.hardware.cluster import DataParallelCluster
from repro.hardware.gpu import GpuSpec
from repro.metrics.summary import RunSummary, percentile, summarize_run
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import (
    Autoscaler,
    AutoscaleConfig,
    ObservedCapabilityEstimator,
)
from repro.serving.engine import EngineConfig
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


class ReplicaState(enum.Enum):
    """Lifecycle of one replica in an elastic fleet.

    ``PROVISIONING -> WARMING -> ACTIVE -> DRAINING -> RETIRED``, with two
    shortcuts: a replica whose cold start is cancelled by a scale-in retires
    straight from PROVISIONING/WARMING (it never served), and zero-delay
    provisioning passes through WARMING at a single timestamp.

    ``FAILED`` is the second terminal state: a fault (crash injection) can
    kill a replica from any non-terminal state — including mid-cold-start
    and mid-drain.  Unlike RETIRED, a failure is involuntary: the replica's
    unstarted work is migrated (or stranded as lost) rather than finished,
    and its GPU is gone, so it stops counting against the autoscaler's
    holding ceiling immediately.
    """

    PROVISIONING = "provisioning"  # resources committed, cold start running
    WARMING = "warming"            # cold start paid, warmup running
    ACTIVE = "active"              # in the dispatch set
    DRAINING = "draining"          # finishing in-flight work, accepts nothing
    RETIRED = "retired"            # drained and removed; accounting frozen
    FAILED = "failed"              # crashed; work migrated or lost


#: Legal lifecycle edges (see :class:`ReplicaState`).
_TRANSITIONS: dict[ReplicaState, tuple[ReplicaState, ...]] = {
    ReplicaState.PROVISIONING: (ReplicaState.WARMING, ReplicaState.RETIRED,
                                ReplicaState.FAILED),
    ReplicaState.WARMING: (ReplicaState.ACTIVE, ReplicaState.RETIRED,
                           ReplicaState.FAILED),
    ReplicaState.ACTIVE: (ReplicaState.DRAINING, ReplicaState.FAILED),
    ReplicaState.DRAINING: (ReplicaState.RETIRED, ReplicaState.FAILED),
    ReplicaState.RETIRED: (),
    ReplicaState.FAILED: (),
}


@dataclass
class ReplicaHandle:
    """One replica's lifecycle record: engine, state, and timestamps.

    The handle owns its state machine (transitions validate against
    ``_TRANSITIONS``); the cluster owns the *timing* — it schedules the
    cold-start timers and calls the transition methods.  ``index`` is the
    replica's stable slot in the cluster's engine list (retired replicas
    keep their slot so per-replica accounting never shifts).
    """

    engine: Any
    index: int
    state: ReplicaState = ReplicaState.ACTIVE
    provisioned_at: float = 0.0
    active_at: Optional[float] = None
    drain_started_at: Optional[float] = None
    retired_at: Optional[float] = None
    failed_at: Optional[float] = None
    #: Transient-stall fault: the replica is healthy and keeps serving its
    #: in-flight work, but accepts no new dispatches until the window ends.
    stalled: bool = False
    #: Pending cold-start timer (a Simulator Event), cancelled when a
    #: scale-in retires the replica before it ever activates.
    pending_event: Any = field(default=None, repr=False)

    # -- state predicates (duck-typed by the autoscaler; keep them cheap) --
    @property
    def is_provisioning(self) -> bool:
        return self.state is ReplicaState.PROVISIONING

    @property
    def is_warming(self) -> bool:
        return self.state is ReplicaState.WARMING

    @property
    def is_active(self) -> bool:
        return self.state is ReplicaState.ACTIVE

    @property
    def is_draining(self) -> bool:
        return self.state is ReplicaState.DRAINING

    @property
    def is_retired(self) -> bool:
        return self.state is ReplicaState.RETIRED

    @property
    def is_failed(self) -> bool:
        return self.state is ReplicaState.FAILED

    @property
    def accepts_work(self) -> bool:
        """Dispatch eligibility: ACTIVE and not in a transient stall."""
        return self.state is ReplicaState.ACTIVE and not self.stalled

    @property
    def in_fleet(self) -> bool:
        """Counted against the fleet-size bounds (not retired/draining/
        failed — a dead replica's capacity is gone)."""
        return self.state in (ReplicaState.PROVISIONING, ReplicaState.WARMING,
                              ReplicaState.ACTIVE)

    def in_flight(self) -> int:
        """The engine's in-flight request count (0 for engines without one)."""
        probe = getattr(self.engine, "in_flight_count", None)
        return probe() if callable(probe) else 0

    # -- transitions -------------------------------------------------------
    def _transition(self, new_state: ReplicaState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise RuntimeError(
                f"replica {self.index}: illegal lifecycle transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state

    def begin_warmup(self, now: float) -> None:
        self._transition(ReplicaState.WARMING)

    def activate(self, now: float) -> None:
        self._transition(ReplicaState.ACTIVE)
        self.active_at = now

    def begin_drain(self, now: float) -> None:
        self._transition(ReplicaState.DRAINING)
        self.drain_started_at = now

    def retire(self, now: float) -> None:
        self._transition(ReplicaState.RETIRED)
        self.retired_at = now

    def fail(self, now: float) -> None:
        self._transition(ReplicaState.FAILED)
        self.failed_at = now
        self.stalled = False

    # -- accounting --------------------------------------------------------
    def replica_seconds(self, now: float) -> float:
        """Resource-time consumed: provisioning start until retirement (or
        failure — a crashed GPU stops billing the moment it dies).

        A provisioning replica is already holding a GPU, and a draining one
        still is — both count.  Retired replicas are frozen at
        ``retired_at``, failed ones at ``failed_at``.
        """
        end = now
        if self.retired_at is not None:
            end = self.retired_at
        elif self.failed_at is not None:
            end = self.failed_at
        return max(0.0, end - self.provisioned_at)


@dataclass
class ReplicaFactory:
    """Builds replicas of one preset on a shared clock, mid-run included.

    Replica ``index`` is built with ``seed + index`` (the same derivation
    the initial fleet uses), so a replica provisioned by the autoscaler at
    t=83s has the same decorrelated RNG streams it would have had at
    construction time.  ``spec`` accepts any ``replica_specs`` entry, which
    is how heterogeneous scale-out (e.g. cheaper spot-class GPUs for
    overflow capacity) enters the fleet.
    """

    preset: str
    sim: Simulator
    seed: int
    build_kwargs: dict

    def build(self, index: int, spec=None):
        from repro.systems import build_system  # local import: avoid cycle

        overrides = _replica_overrides(spec)
        return build_system(self.preset, sim=self.sim, seed=self.seed + index,
                            **{**self.build_kwargs, **overrides})


@dataclass
class MultiReplicaSystem:
    """N data-parallel replicas of one serving-system preset."""

    replicas: list
    cluster: DataParallelCluster
    sim: Simulator
    slo_policy: Optional[SloPolicy] = None
    factory: Optional[ReplicaFactory] = None
    autoscaler: Optional[Autoscaler] = None
    fault_injector: Optional[Any] = None

    @classmethod
    def build(
        cls,
        preset: str,
        n_replicas: Optional[int] = None,
        dispatch_policy: str = "least_loaded",
        *,
        backpressure: bool = True,
        spill_factor: float = 1.5,
        slo_policy: Optional[SloPolicy] = None,
        tenancy=None,
        replica_specs: Optional[Sequence] = None,
        normalize_capability: bool = True,
        autoscale: Optional[AutoscaleConfig] = None,
        autoscale_budget=None,
        autoscale_budget_key: int = 0,
        capability_estimator="auto",
        fault_schedule=None,
        mttf: Optional[float] = None,
        mttr: Optional[float] = None,
        fault_migrate: bool = True,
        fault_retry_started: bool = True,
        dispatch_index: bool = True,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        **build_kwargs,
    ) -> "MultiReplicaSystem":
        """Build ``n_replicas`` replicas of ``preset`` on one shared clock.

        Accepts the same keyword arguments as
        :func:`repro.systems.build_system`.  Replica ``i`` is built with
        ``seed + i`` so per-replica RNG streams (predictor noise, ...) are
        decorrelated; the dispatcher's own randomness (p2c sampling) derives
        from the base ``seed``.

        ``replica_specs`` makes the fleet heterogeneous: one entry per
        replica, each a :class:`GpuSpec`, a GPU-zoo name (``"a100-80gb"``),
        an :class:`EngineConfig`, or a dict of ``build_system`` overrides
        (e.g. ``{"gpu": "a40-48gb", "engine_config": ...}``); ``None``
        entries keep the shared defaults.  ``n_replicas`` may be omitted
        when ``replica_specs`` determines the fleet size.

        ``autoscale`` (an :class:`~repro.serving.autoscaler.AutoscaleConfig`)
        makes the fleet elastic: the initial fleet (``n_replicas``, default
        ``min_replicas``) is the floor the controller grows from.  Scale
        events, replica-seconds and goodput per replica-second surface in
        ``summary().extra``.  ``capability_estimator`` selects the routing
        weights: ``"spec"`` (static, from GPU specs — the legacy behaviour),
        ``"observed"`` (an :class:`ObservedCapabilityEstimator` tracking
        per-replica service rates), an estimator instance, or ``"auto"``
        (default): observed when autoscaling — newly warmed replicas need
        live weights — and spec otherwise, keeping static fleets bit-for-bit
        unchanged.

        **Faults** (see :mod:`repro.faults`): ``fault_schedule`` (a
        :class:`~repro.faults.FaultSchedule` or its CLI string syntax)
        scripts crashes/degradations/stalls at explicit times; ``mttf``
        adds a seeded random failure process (``mttr`` turns failures into
        repairable outages).  ``fault_migrate``/``fault_retry_started``
        select crash recovery: migrate a dead replica's work back through
        the dispatcher, or strand it as lost (the no-recovery baseline).
        The fault RNG is its own named stream (``seed`` + ``"faults"``), so
        the fault times never perturb the workload.  With no fault
        arguments, nothing is built and behaviour is bit-for-bit unchanged.

        ``tenancy`` (a :class:`~repro.serving.admission.TenantFairnessPolicy`)
        switches the dispatcher's global queue to per-tenant deficit-round-
        robin lanes with token-bucket admission quotas and adds the
        per-tenant fairness block to ``summary().extra``; ``None`` keeps the
        anonymous FIFO path bit-for-bit unchanged.

        ``dispatch_index=False`` forces linear-scan dispatch (differential
        baselines; see ``DataParallelCluster``).  ``sim`` shares an
        existing clock — a :class:`~repro.serving.region.ServingRegion`
        builds one system per dispatcher shard on one simulator.
        ``autoscale_budget`` attaches the autoscaler to a region-wide
        shared GPU pool (duck-typed ``report(key, n)`` / ``available()``;
        see ``serving.region.SharedGpuBudget``) under claim key
        ``autoscale_budget_key``; ``None`` keeps the historic unshared
        controller bit for bit.
        """
        from repro.systems import build_system  # local import: avoid cycle

        if replica_specs is not None:
            replica_specs = list(replica_specs)
            if n_replicas is None:
                n_replicas = len(replica_specs)
            elif n_replicas != len(replica_specs):
                raise ValueError(
                    f"replica_specs has {len(replica_specs)} entries but "
                    f"n_replicas={n_replicas}")
        if n_replicas is None:
            if autoscale is not None:
                n_replicas = autoscale.min_replicas
            else:
                raise ValueError("pass n_replicas, replica_specs or autoscale")
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if autoscale is not None:
            if not backpressure:
                raise ValueError(
                    "autoscaling needs backpressure: its pressure signals "
                    "(shed rate, queue wait) live in the global queue")
            if not autoscale.min_replicas <= n_replicas <= autoscale.max_replicas:
                raise ValueError(
                    f"initial fleet of {n_replicas} is outside the autoscale "
                    f"bounds [{autoscale.min_replicas}, {autoscale.max_replicas}]")
            if build_kwargs.get("registry") is None:
                # Scale-out replicas must share the adapter pool with the
                # initial fleet; build one registry up front instead of one
                # per build call, with the model/pool-size defaults read off
                # build_system's own signature (one source of truth).
                import inspect

                from repro.adapters.registry import AdapterRegistry
                defaults = inspect.signature(build_system).parameters
                build_kwargs["registry"] = AdapterRegistry.build(
                    build_kwargs.get("model", defaults["model"].default),
                    build_kwargs.get("n_adapters",
                                     defaults["n_adapters"].default))
        estimator = cls._resolve_estimator(capability_estimator, autoscale)
        if sim is None:
            sim = Simulator()  # own clock; a region passes its shared one
        factory = ReplicaFactory(preset=preset, sim=sim, seed=seed,
                                 build_kwargs=dict(build_kwargs))
        replicas = []
        for i in range(n_replicas):
            spec = replica_specs[i] if replica_specs is not None else None
            replicas.append(factory.build(i, spec=spec))
        cluster = DataParallelCluster(
            [system.engine for system in replicas],
            policy=dispatch_policy,
            backpressure=backpressure,
            spill_factor=spill_factor,
            slo_policy=slo_policy,
            normalize_capability=normalize_capability,
            rng=np.random.default_rng(seed),  # simlint: ignore[D001] -- dispatch RNG byte stream pinned since PR 1; moving it into RngStreams would re-pair every fig26-fig30 baseline
            capability_estimator=estimator,
            sim=sim,
            dispatch_index=dispatch_index,
            tenancy=tenancy,
        )
        system = cls(replicas=replicas, cluster=cluster, sim=sim,
                     slo_policy=slo_policy, factory=factory)
        if autoscale is not None:
            system.autoscaler = Autoscaler(
                sim=sim, cluster=cluster, config=autoscale,
                provision=system.provision_replica,
                budget=autoscale_budget, budget_key=autoscale_budget_key)
        if fault_schedule is not None or mttf is not None:
            from repro.faults import FaultInjector, FaultSchedule
            from repro.sim.rng import RngStreams
            if isinstance(fault_schedule, str):
                fault_schedule = FaultSchedule.parse(fault_schedule)
            system.fault_injector = FaultInjector(
                cluster, sim=sim, schedule=fault_schedule,
                mttf=mttf, mttr=mttr,
                rng=RngStreams(seed).get("faults") if mttf is not None
                else None,
                migrate=fault_migrate, retry_started=fault_retry_started)
        return system

    @staticmethod
    def _resolve_estimator(capability_estimator, autoscale):
        if capability_estimator == "auto":
            capability_estimator = "observed" if autoscale is not None else "spec"
        if capability_estimator in ("spec", None):
            return None
        if capability_estimator == "observed":
            return ObservedCapabilityEstimator()
        return capability_estimator  # an estimator instance

    # ------------------------------------------------------------------ #
    @property
    def engines(self) -> list:
        return [system.engine for system in self.replicas]

    @property
    def replica_handles(self) -> list:
        """Lifecycle handles, one per replica ever built (index-stable)."""
        return list(self.cluster.handles)

    def capabilities(self) -> list[float]:
        """Normalized per-replica capability weights (mean 1.0)."""
        return self.cluster.capability_weights()

    def provision_replica(self, spec=None, *, provision_delay: float = 0.0,
                          warmup_delay: float = 0.0):
        """Build one replica on the shared clock and add it to the fleet.

        The replica derives its seed from its fleet index (``seed + i``)
        and joins the dispatch set once its cold start elapses.  Returns
        the new :class:`ReplicaHandle`.
        """
        if self.factory is None:
            raise RuntimeError(
                "this system has no ReplicaFactory; build it with "
                "MultiReplicaSystem.build to provision replicas mid-run")
        index = len(self.replicas)
        system = self.factory.build(index, spec=spec)
        self.replicas.append(system)
        return self.cluster.add_replica(
            system.engine, provision_delay=provision_delay,
            warmup_delay=warmup_delay)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer, shard: int = 0) -> None:
        """Attach a :class:`repro.obs.Tracer` to every moving part of this
        system: the dispatch cluster (queue/dispatch spans, SLO and
        migration annotations, per-request span waterfalls on the replica
        tracks), the autoscaler (scale decisions), and the fault injector
        (crash/stall/degrade marks).  ``shard`` namespaces the Perfetto
        tracks when several systems share one tracer (see
        :class:`~repro.serving.region.ServingRegion`)."""
        from repro.obs.tracer import dispatcher_tid

        self.cluster.attach_tracer(tracer, shard=shard)
        if self.autoscaler is not None:
            self.autoscaler.attach_tracer(tracer, tid=dispatcher_tid(shard))
        if self.fault_injector is not None:
            self.fault_injector.attach_tracer(
                tracer, tid=dispatcher_tid(shard))

    def attach_metrics(self, registry, prefix: str = "") -> None:
        """Register this system's gauges/histograms on ``registry`` (queue
        depth, in-flight, cache hit rate, GPU bytes, TTFT, ...).  Call
        ``registry.install(sim, interval, until)`` to sample them into a
        deterministic timeseries."""
        self.cluster.attach_metrics(registry, prefix=prefix)

    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        """Dispatch every arrival through the global scheduler and run."""
        last_arrival = 0.0
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run; "
                    "use Trace.fresh()"
                )
            last_arrival = max(last_arrival, request.arrival_time)
            self.sim.schedule_at(request.arrival_time, self.cluster.dispatch, request)
        if self.autoscaler is not None:
            # Tick until the trace ends (or the horizon); past that, ticks
            # continue only while work is still queued or in flight.
            self.autoscaler.start(
                until=horizon if horizon is not None else last_arrival)
        if self.fault_injector is not None:
            self.fault_injector.start(
                until=horizon if horizon is not None else last_arrival)
        self.sim.run(until=horizon)

    def all_requests(self) -> list[Request]:
        """Every arrival: dispatched to an engine, still in a cluster queue
        (a horizon can stop a backlogged run mid-queue), *or* shed by the
        SLO policy — accounting must not lose any of them."""
        dispatched = [r for engine in self.engines for r in engine.all_requests]
        return dispatched + self.cluster.pending_requests() \
            + self.cluster.shed_requests()

    def summary(self, **kwargs) -> RunSummary:
        """Cluster-wide :class:`RunSummary` with DP extensions in ``extra``:

        per-replica completion counts, load imbalance (max/mean), the
        lookup-weighted aggregate cache hit rate, and dispatch-queue delay
        percentiles (0 for requests that never waited in the global queue).
        The delay percentiles cover the same population as the latency
        columns: finished requests arriving after ``warmup``.

        With an :class:`SloPolicy` attached, ``extra`` also carries the SLO
        accounting: ``cluster_shed`` / ``cluster_deprioritized`` counts,
        ``shed_rate`` (shed / post-warmup arrivals),
        ``cluster_slo_attainment`` (deadline-compliant completions /
        post-warmup arrivals — shed and unfinished requests count against
        it, and per-request deadlines apply; distinct from the
        finished-only ``RunSummary.slo_attainment`` field), and
        ``goodput_rps`` (deadline-compliant completions per second over
        the same span the ``completed_rps`` column uses).
        """
        requests = self.all_requests()
        summary = summarize_run(requests, **kwargs)
        warmup = kwargs.get("warmup", 0.0)
        delays = [
            r.dispatch_queue_delay for r in requests
            if r.finished and r.arrival_time >= warmup
        ]
        counts = self.per_replica_counts()
        mean_count = sum(counts) / len(counts)
        summary.extra.update(
            per_replica_counts=counts,
            load_imbalance=max(counts) / mean_count if mean_count > 0 else float("nan"),
            aggregate_hit_rate=self.aggregate_hit_rate(),
            p50_dispatch_queue_delay=percentile(delays, 50),
            p99_dispatch_queue_delay=percentile(delays, 99),
            cluster_queued=self.cluster.stats.queued,
            affinity_spills=self.cluster.stats.spills,
            cluster_shed=self.cluster.stats.shed,
            cluster_deprioritized=self.cluster.stats.deprioritized,
        )
        good_completions: Optional[int] = None
        if self.slo_policy is not None:
            arrivals = [r for r in requests if r.arrival_time >= warmup]
            done = [r for r in arrivals if r.finished]
            attained = [r for r in done if self.slo_policy.attained(r)]
            good_completions = len(attained)
            shed = sum(1 for r in arrivals if r.shed)
            span = kwargs.get("duration")
            if span is None:
                span = max((r.finish_time for r in done), default=0.0)
            summary.extra.update(
                shed_rate=shed / len(arrivals) if arrivals else float("nan"),
                cluster_slo_attainment=(
                    len(attained) / len(arrivals) if arrivals else float("nan")),
                goodput_rps=len(attained) / span if span > 0 else 0.0,
            )
        if self.autoscaler is not None:
            replica_seconds = self.cluster.replica_seconds(self.sim.now)
            if good_completions is None:
                # Without an SLO policy every post-warmup completion counts.
                good_completions = sum(
                    1 for r in requests
                    if r.finished and r.arrival_time >= warmup)
            summary.extra.update(
                scale_out_events=self.autoscaler.scale_out_count,
                scale_in_events=self.autoscaler.scale_in_count,
                predictive_scale_out_events=(
                    self.autoscaler.predictive_scale_out_count),
                scale_events=list(self.autoscaler.events),
                replica_seconds=replica_seconds,
                peak_fleet_size=self.autoscaler.peak_fleet,
                final_active_replicas=self.cluster.active_count(),
                goodput_per_replica_second=(
                    good_completions / replica_seconds
                    if replica_seconds > 0 else 0.0),
            )
        if self.fault_injector is not None:
            # Fault accounting is keyed on the injector's presence, not on
            # whether faults actually fired: a fault-free *configuration*
            # (no injector) keeps its summary byte-identical to the
            # pre-fault-subsystem output.
            arrivals = [r for r in requests if r.arrival_time >= warmup]
            lost = sum(1 for r in arrivals if r.lost)
            stats = self.cluster.stats
            summary.extra.update(
                cluster_failures=stats.failures,
                cluster_stalls=stats.stalls,
                cluster_migrations=stats.migrations,
                cluster_lost=stats.lost,
                lost_rate=lost / len(arrivals) if arrivals else float("nan"),
                # Availability as the user sees it: the fraction of offered
                # requests not stranded by a failure (shed requests got an
                # answer — a rejection — so they count as served here).
                availability=(
                    1.0 - lost / len(arrivals) if arrivals else float("nan")),
                fault_log=list(self.fault_injector.log),
                migration_timeline=list(self.cluster.migration_log),
                retry_timelines={
                    r.request_id: list(r.migrated_at)
                    for r in requests if r.migrated_at},
                max_retry_count=max(
                    (r.retry_count for r in requests), default=0),
            )
            if self.autoscaler is not None:
                summary.extra.update(
                    self_heal_events=self.autoscaler.self_heal_count)
        if self.cluster.tenancy is not None:
            # Keyed on the fairness policy's presence, not on whether the
            # trace carries tenants: a tenant-labelled trace run without a
            # tenancy policy (fig31) keeps its summary byte-identical.
            self._tenant_block(summary.extra, requests, warmup)
        return summary

    def _tenant_block(self, extra: dict, requests, warmup: float) -> None:
        """Write the per-tenant fairness accounting into ``extra``.

        All lists are parallel to ``tenant_ids`` (sorted, the anonymous
        ``None`` tenant last).  ``tenant_attainment`` counts shed and
        unfinished requests against the tenant (like
        ``cluster_slo_attainment``); its spread (max - min) and Jain index
        are the fairness headline, and the quota columns expose how hard the
        token buckets worked (throttle visits, borrow-from-idle admissions).
        """
        from repro.metrics.summary import jain_fairness_index, tenant_breakdown

        attained = (self.slo_policy.attained
                    if self.slo_policy is not None else None)
        breakdown = tenant_breakdown(requests, warmup=warmup,
                                     attained=attained)
        books = self.cluster.stats.tenants
        tenant_ids = breakdown["tenant_ids"]
        throttles, borrows, virtual_times, weights = [], [], [], []
        for tenant in tenant_ids:
            book = books.get(tenant)
            throttles.append(book.throttled if book is not None else 0)
            borrows.append(book.borrowed if book is not None else 0)
            virtual_times.append(
                book.virtual_time if book is not None else 0.0)
            weights.append(book.weight if book is not None else 1.0)
        attainment = [a for a in breakdown["attainment"]
                      if a == a]  # drop NaN lanes (no post-warmup arrivals)
        extra.update(
            tenant_ids=tenant_ids,
            tenant_arrivals=breakdown["arrivals"],
            tenant_completed=breakdown["completed"],
            tenant_shed=breakdown["shed"],
            tenant_lost=breakdown["lost"],
            tenant_attainment=breakdown["attainment"],
            tenant_attainment_spread=(
                max(attainment) - min(attainment) if attainment
                else float("nan")),
            tenant_fairness_jain=jain_fairness_index(attainment),
            tenant_quota_throttles=throttles,
            tenant_quota_borrows=borrows,
            tenant_virtual_time=virtual_times,
            tenant_weights=weights,
        )

    def per_replica_counts(self) -> list[int]:
        """Completed requests per replica (load-balance diagnostics)."""
        return [
            sum(1 for r in engine.all_requests if r.finished)
            for engine in self.engines
        ]

    def load_imbalance(self) -> float:
        """Max/mean of per-replica completion counts (1.0 = perfect balance)."""
        counts = self.per_replica_counts()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else float("nan")

    def aggregate_hit_rate(self) -> float:
        """Cluster-wide hit rate, weighted by each replica's lookup volume.

        This is total hits over total lookups — unlike the unweighted mean of
        per-replica rates (:meth:`mean_hit_rate`), it is not skewed by
        replicas that served almost no adapter traffic.
        """
        hits = sum(s.adapter_manager.stats.hits for s in self.replicas)
        lookups = sum(
            s.adapter_manager.stats.hits
            + s.adapter_manager.stats.misses
            + s.adapter_manager.stats.overlapped
            for s in self.replicas
        )
        return hits / lookups if lookups else float("nan")

    def mean_hit_rate(self) -> float:
        """Unweighted mean of per-replica hit rates (legacy diagnostic;
        prefer :meth:`aggregate_hit_rate` for cluster-level claims)."""
        rates = [
            system.adapter_manager.stats.hit_rate for system in self.replicas
            if system.adapter_manager.stats.hits + system.adapter_manager.stats.misses
            + system.adapter_manager.stats.overlapped > 0
        ]
        return sum(rates) / len(rates) if rates else float("nan")

    def dispatch_queue_delays(self) -> list[float]:
        """Per-request global-queue delays (0 for directly-dispatched)."""
        return [r.dispatch_queue_delay for r in self.all_requests()]


def _replica_overrides(spec) -> dict:
    """Normalize one ``replica_specs`` entry to ``build_system`` overrides.

    GPU-zoo names resolve through :func:`repro.systems.resolve_gpu` — the
    single resolution helper with the single error message — eagerly, so a
    bad name in a replica spec fails here with the same diagnostics a bad
    ``build_system(gpu=...)`` argument produces.
    """
    if spec is None:
        return {}
    if isinstance(spec, (GpuSpec, str)):
        from repro.systems import resolve_gpu  # local import: avoid cycle
        return {"gpu": resolve_gpu(spec)}
    if isinstance(spec, EngineConfig):
        return {"engine_config": spec}
    if isinstance(spec, dict):
        overrides = dict(spec)
        if isinstance(overrides.get("gpu"), (GpuSpec, str)):
            from repro.systems import resolve_gpu
            overrides["gpu"] = resolve_gpu(overrides["gpu"])
        return overrides
    raise TypeError(
        f"replica spec must be a GpuSpec, GPU name, EngineConfig, dict or "
        f"None, got {type(spec).__name__}")
