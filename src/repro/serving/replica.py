"""Data-parallel serving: N engines behind a two-level scheduler (§4.4).

With data parallelism, Chameleon "uses a two-level scheduler: a global
scheduler dispatches requests to the different engines, and each engine has
its local scheduler", and "replicates the adapter cache across engines"
(each replica manages its own cache of the shared adapter pool).

:class:`MultiReplicaSystem` builds N identical replicas of any system preset
on one shared simulated clock, dispatches arrivals through a
:class:`~repro.hardware.cluster.DataParallelCluster` (global admission queue
with backpressure + routing policy), and aggregates metrics across engines.
Each replica derives its own RNG seed (``seed + i``) so predictor noise and
any other stochastic component are independent across the cluster — a shared
seed would correlate the errors and bias DP experiments.

Dispatch policies (``dispatch_policy=`` in :meth:`MultiReplicaSystem.build`):

=====================  =========================================================
policy                 routing rule
=====================  =========================================================
``round_robin``        cyclic assignment; load- and cache-oblivious
``least_loaded``       JSQ by in-flight request count
``p2c``                power-of-two-choices: sample 2 engines, join the less
                       loaded (near-JSQ balance with O(1) probes)
``token_weighted``     JSQ by in-flight *tokens* (remaining prefill +
                       predicted remaining decode), robust to size skew
``adapter_affinity``   least-loaded engine holding the adapter resident;
                       unbounded — a hot adapter can swamp one replica
``bounded_affinity``   adapter affinity until the affine replica's load
                       exceeds ``spill_factor`` x the cluster mean, then JSQ
=====================  =========================================================

Every load probe the table relies on is divided by the replica's relative
``capability()`` (compute x bandwidth, TP-scaled), so on a **heterogeneous
fleet** (``replica_specs=``, mixed GPU specs behind one dispatcher) the
load-following policies compare utilization, not raw backlog; pass
``normalize_capability=False`` to reproduce spec-oblivious routing.

On top of routing sits the **SLO admission lane** (``slo_policy=``, a
:class:`~repro.serving.admission.SloPolicy`): arrivals whose estimated
global-queue wait exceeds their TTFT deadline are shed (rejected with
accounting) or deprioritized into a low-priority lane drained only while
the FIFO lane is empty.  Goodput, shed rate and SLO attainment surface in
``summary().extra``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.hardware.cluster import DataParallelCluster
from repro.hardware.gpu import GpuSpec
from repro.metrics.summary import RunSummary, percentile, summarize_run
from repro.serving.admission import SloPolicy
from repro.serving.engine import EngineConfig
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


@dataclass
class MultiReplicaSystem:
    """N data-parallel replicas of one serving-system preset."""

    replicas: list
    cluster: DataParallelCluster
    sim: Simulator
    slo_policy: Optional[SloPolicy] = None

    @classmethod
    def build(
        cls,
        preset: str,
        n_replicas: Optional[int] = None,
        dispatch_policy: str = "least_loaded",
        *,
        backpressure: bool = True,
        spill_factor: float = 1.5,
        slo_policy: Optional[SloPolicy] = None,
        replica_specs: Optional[Sequence] = None,
        normalize_capability: bool = True,
        seed: int = 0,
        **build_kwargs,
    ) -> "MultiReplicaSystem":
        """Build ``n_replicas`` replicas of ``preset`` on one shared clock.

        Accepts the same keyword arguments as
        :func:`repro.systems.build_system`.  Replica ``i`` is built with
        ``seed + i`` so per-replica RNG streams (predictor noise, ...) are
        decorrelated; the dispatcher's own randomness (p2c sampling) derives
        from the base ``seed``.

        ``replica_specs`` makes the fleet heterogeneous: one entry per
        replica, each a :class:`GpuSpec`, a GPU-zoo name (``"a100-80gb"``),
        an :class:`EngineConfig`, or a dict of ``build_system`` overrides
        (e.g. ``{"gpu": "a40-48gb", "engine_config": ...}``); ``None``
        entries keep the shared defaults.  ``n_replicas`` may be omitted
        when ``replica_specs`` determines the fleet size.
        """
        from repro.systems import build_system  # local import: avoid cycle

        if replica_specs is not None:
            replica_specs = list(replica_specs)
            if n_replicas is None:
                n_replicas = len(replica_specs)
            elif n_replicas != len(replica_specs):
                raise ValueError(
                    f"replica_specs has {len(replica_specs)} entries but "
                    f"n_replicas={n_replicas}")
        if n_replicas is None:
            raise ValueError("pass n_replicas or replica_specs")
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        sim = Simulator()
        replicas = []
        for i in range(n_replicas):
            overrides = _replica_overrides(
                replica_specs[i] if replica_specs is not None else None)
            replicas.append(build_system(
                preset, sim=sim, seed=seed + i,
                **{**build_kwargs, **overrides}))
        cluster = DataParallelCluster(
            [system.engine for system in replicas],
            policy=dispatch_policy,
            backpressure=backpressure,
            spill_factor=spill_factor,
            slo_policy=slo_policy,
            normalize_capability=normalize_capability,
            rng=np.random.default_rng(seed),
        )
        return cls(replicas=replicas, cluster=cluster, sim=sim,
                   slo_policy=slo_policy)

    # ------------------------------------------------------------------ #
    @property
    def engines(self) -> list:
        return [system.engine for system in self.replicas]

    def capabilities(self) -> list[float]:
        """Normalized per-replica capability weights (mean 1.0)."""
        return self.cluster.capability_weights()

    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        """Dispatch every arrival through the global scheduler and run."""
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run; "
                    "use Trace.fresh()"
                )
            self.sim.schedule_at(request.arrival_time, self.cluster.dispatch, request)
        self.sim.run(until=horizon)

    def all_requests(self) -> list[Request]:
        """Every arrival: dispatched to an engine, still in a cluster queue
        (a horizon can stop a backlogged run mid-queue), *or* shed by the
        SLO policy — accounting must not lose any of them."""
        dispatched = [r for engine in self.engines for r in engine.all_requests]
        return dispatched + self.cluster.pending_requests() \
            + self.cluster.shed_requests()

    def summary(self, **kwargs) -> RunSummary:
        """Cluster-wide :class:`RunSummary` with DP extensions in ``extra``:

        per-replica completion counts, load imbalance (max/mean), the
        lookup-weighted aggregate cache hit rate, and dispatch-queue delay
        percentiles (0 for requests that never waited in the global queue).
        The delay percentiles cover the same population as the latency
        columns: finished requests arriving after ``warmup``.

        With an :class:`SloPolicy` attached, ``extra`` also carries the SLO
        accounting: ``cluster_shed`` / ``cluster_deprioritized`` counts,
        ``shed_rate`` (shed / post-warmup arrivals),
        ``cluster_slo_attainment`` (deadline-compliant completions /
        post-warmup arrivals — shed and unfinished requests count against
        it, and per-request deadlines apply; distinct from the
        finished-only ``RunSummary.slo_attainment`` field), and
        ``goodput_rps`` (deadline-compliant completions per second over
        the same span the ``completed_rps`` column uses).
        """
        requests = self.all_requests()
        summary = summarize_run(requests, **kwargs)
        warmup = kwargs.get("warmup", 0.0)
        delays = [
            r.dispatch_queue_delay for r in requests
            if r.finished and r.arrival_time >= warmup
        ]
        counts = self.per_replica_counts()
        mean_count = sum(counts) / len(counts)
        summary.extra.update(
            per_replica_counts=counts,
            load_imbalance=max(counts) / mean_count if mean_count > 0 else float("nan"),
            aggregate_hit_rate=self.aggregate_hit_rate(),
            p50_dispatch_queue_delay=percentile(delays, 50),
            p99_dispatch_queue_delay=percentile(delays, 99),
            cluster_queued=self.cluster.stats.queued,
            affinity_spills=self.cluster.stats.spills,
            cluster_shed=self.cluster.stats.shed,
            cluster_deprioritized=self.cluster.stats.deprioritized,
        )
        if self.slo_policy is not None:
            arrivals = [r for r in requests if r.arrival_time >= warmup]
            done = [r for r in arrivals if r.finished]
            attained = [r for r in done if self.slo_policy.attained(r)]
            shed = sum(1 for r in arrivals if r.shed)
            span = kwargs.get("duration")
            if span is None:
                span = max((r.finish_time for r in done), default=0.0)
            summary.extra.update(
                shed_rate=shed / len(arrivals) if arrivals else float("nan"),
                cluster_slo_attainment=(
                    len(attained) / len(arrivals) if arrivals else float("nan")),
                goodput_rps=len(attained) / span if span > 0 else 0.0,
            )
        return summary

    def per_replica_counts(self) -> list[int]:
        """Completed requests per replica (load-balance diagnostics)."""
        return [
            sum(1 for r in engine.all_requests if r.finished)
            for engine in self.engines
        ]

    def load_imbalance(self) -> float:
        """Max/mean of per-replica completion counts (1.0 = perfect balance)."""
        counts = self.per_replica_counts()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else float("nan")

    def aggregate_hit_rate(self) -> float:
        """Cluster-wide hit rate, weighted by each replica's lookup volume.

        This is total hits over total lookups — unlike the unweighted mean of
        per-replica rates (:meth:`mean_hit_rate`), it is not skewed by
        replicas that served almost no adapter traffic.
        """
        hits = sum(s.adapter_manager.stats.hits for s in self.replicas)
        lookups = sum(
            s.adapter_manager.stats.hits
            + s.adapter_manager.stats.misses
            + s.adapter_manager.stats.overlapped
            for s in self.replicas
        )
        return hits / lookups if lookups else float("nan")

    def mean_hit_rate(self) -> float:
        """Unweighted mean of per-replica hit rates (legacy diagnostic;
        prefer :meth:`aggregate_hit_rate` for cluster-level claims)."""
        rates = [
            system.adapter_manager.stats.hit_rate for system in self.replicas
            if system.adapter_manager.stats.hits + system.adapter_manager.stats.misses
            + system.adapter_manager.stats.overlapped > 0
        ]
        return sum(rates) / len(rates) if rates else float("nan")

    def dispatch_queue_delays(self) -> list[float]:
        """Per-request global-queue delays (0 for directly-dispatched)."""
        return [r.dispatch_queue_delay for r in self.all_requests()]


def _replica_overrides(spec) -> dict:
    """Normalize one ``replica_specs`` entry to ``build_system`` overrides."""
    if spec is None:
        return {}
    if isinstance(spec, (GpuSpec, str)):
        return {"gpu": spec}
    if isinstance(spec, EngineConfig):
        return {"engine_config": spec}
    if isinstance(spec, dict):
        return dict(spec)
    raise TypeError(
        f"replica spec must be a GpuSpec, GPU name, EngineConfig, dict or "
        f"None, got {type(spec).__name__}")
