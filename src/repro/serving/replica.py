"""Data-parallel serving: N engines behind a two-level scheduler (§4.4).

With data parallelism, Chameleon "uses a two-level scheduler: a global
scheduler dispatches requests to the different engines, and each engine has
its local scheduler", and "replicates the adapter cache across engines"
(each replica manages its own cache of the shared adapter pool).

:class:`MultiReplicaSystem` builds N identical replicas of any system preset
on one shared simulated clock, dispatches arrivals through a
:class:`~repro.hardware.cluster.DataParallelCluster` (global admission queue
with backpressure + routing policy), and aggregates metrics across engines.
Each replica derives its own RNG seed (``seed + i``) so predictor noise and
any other stochastic component are independent across the cluster — a shared
seed would correlate the errors and bias DP experiments.

Dispatch policies (``dispatch_policy=`` in :meth:`MultiReplicaSystem.build`):

=====================  =========================================================
policy                 routing rule
=====================  =========================================================
``round_robin``        cyclic assignment; load- and cache-oblivious
``least_loaded``       JSQ by in-flight request count
``p2c``                power-of-two-choices: sample 2 engines, join the less
                       loaded (near-JSQ balance with O(1) probes)
``token_weighted``     JSQ by in-flight *tokens* (remaining prefill +
                       predicted remaining decode), robust to size skew
``adapter_affinity``   least-loaded engine holding the adapter resident;
                       unbounded — a hot adapter can swamp one replica
``bounded_affinity``   adapter affinity until the affine replica's load
                       exceeds ``spill_factor`` x the cluster mean, then JSQ
=====================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.cluster import DataParallelCluster
from repro.metrics.summary import RunSummary, percentile, summarize_run
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


@dataclass
class MultiReplicaSystem:
    """N data-parallel replicas of one serving-system preset."""

    replicas: list
    cluster: DataParallelCluster
    sim: Simulator

    @classmethod
    def build(
        cls,
        preset: str,
        n_replicas: int,
        dispatch_policy: str = "least_loaded",
        *,
        backpressure: bool = True,
        spill_factor: float = 1.5,
        seed: int = 0,
        **build_kwargs,
    ) -> "MultiReplicaSystem":
        """Build ``n_replicas`` copies of ``preset`` on one shared clock.

        Accepts the same keyword arguments as
        :func:`repro.systems.build_system`.  Replica ``i`` is built with
        ``seed + i`` so per-replica RNG streams (predictor noise, ...) are
        decorrelated; the dispatcher's own randomness (p2c sampling) derives
        from the base ``seed``.
        """
        from repro.systems import build_system  # local import: avoid cycle

        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        sim = Simulator()
        replicas = [
            build_system(preset, sim=sim, seed=seed + i, **build_kwargs)
            for i in range(n_replicas)
        ]
        cluster = DataParallelCluster(
            [system.engine for system in replicas],
            policy=dispatch_policy,
            backpressure=backpressure,
            spill_factor=spill_factor,
            rng=np.random.default_rng(seed),
        )
        return cls(replicas=replicas, cluster=cluster, sim=sim)

    # ------------------------------------------------------------------ #
    @property
    def engines(self) -> list:
        return [system.engine for system in self.replicas]

    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        """Dispatch every arrival through the global scheduler and run."""
        for request in requests:
            if request.state is not RequestState.CREATED:
                raise ValueError(
                    f"request {request.request_id} was already run; "
                    "use Trace.fresh()"
                )
            self.sim.schedule_at(request.arrival_time, self.cluster.dispatch, request)
        self.sim.run(until=horizon)

    def all_requests(self) -> list[Request]:
        """Every arrival: dispatched to an engine *or* still in the global
        queue (a horizon can stop a backlogged run mid-queue — those
        arrivals must not vanish from accounting)."""
        dispatched = [r for engine in self.engines for r in engine.all_requests]
        return dispatched + self.cluster.pending_requests()

    def summary(self, **kwargs) -> RunSummary:
        """Cluster-wide :class:`RunSummary` with DP extensions in ``extra``:

        per-replica completion counts, load imbalance (max/mean), the
        lookup-weighted aggregate cache hit rate, and dispatch-queue delay
        percentiles (0 for requests that never waited in the global queue).
        The delay percentiles cover the same population as the latency
        columns: finished requests arriving after ``warmup``.
        """
        requests = self.all_requests()
        summary = summarize_run(requests, **kwargs)
        warmup = kwargs.get("warmup", 0.0)
        delays = [
            r.dispatch_queue_delay for r in requests
            if r.finished and r.arrival_time >= warmup
        ]
        counts = self.per_replica_counts()
        mean_count = sum(counts) / len(counts)
        summary.extra.update(
            per_replica_counts=counts,
            load_imbalance=max(counts) / mean_count if mean_count > 0 else float("nan"),
            aggregate_hit_rate=self.aggregate_hit_rate(),
            p50_dispatch_queue_delay=percentile(delays, 50),
            p99_dispatch_queue_delay=percentile(delays, 99),
            cluster_queued=self.cluster.stats.queued,
            affinity_spills=self.cluster.stats.spills,
        )
        return summary

    def per_replica_counts(self) -> list[int]:
        """Completed requests per replica (load-balance diagnostics)."""
        return [
            sum(1 for r in engine.all_requests if r.finished)
            for engine in self.engines
        ]

    def load_imbalance(self) -> float:
        """Max/mean of per-replica completion counts (1.0 = perfect balance)."""
        counts = self.per_replica_counts()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else float("nan")

    def aggregate_hit_rate(self) -> float:
        """Cluster-wide hit rate, weighted by each replica's lookup volume.

        This is total hits over total lookups — unlike the unweighted mean of
        per-replica rates (:meth:`mean_hit_rate`), it is not skewed by
        replicas that served almost no adapter traffic.
        """
        hits = sum(s.adapter_manager.stats.hits for s in self.replicas)
        lookups = sum(
            s.adapter_manager.stats.hits
            + s.adapter_manager.stats.misses
            + s.adapter_manager.stats.overlapped
            for s in self.replicas
        )
        return hits / lookups if lookups else float("nan")

    def mean_hit_rate(self) -> float:
        """Unweighted mean of per-replica hit rates (legacy diagnostic;
        prefer :meth:`aggregate_hit_rate` for cluster-level claims)."""
        rates = [
            system.adapter_manager.stats.hit_rate for system in self.replicas
            if system.adapter_manager.stats.hits + system.adapter_manager.stats.misses
            + system.adapter_manager.stats.overlapped > 0
        ]
        return sum(rates) / len(rates) if rates else float("nan")

    def dispatch_queue_delays(self) -> list[float]:
        """Per-request global-queue delays (0 for directly-dispatched)."""
        return [r.dispatch_queue_delay for r in self.all_requests()]
