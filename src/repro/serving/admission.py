"""Admission results and the context schedulers use to build a batch.

Keeping all memory/adapter admission logic behind one ``try_admit`` call lets
every scheduling policy (FIFO, SJF, MLQ) share identical resource semantics —
the policies differ only in *which* requests they offer and in what order.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.serving.engine import ServingEngine
    from repro.workload.request import Request


class AdmitResult(enum.Enum):
    """Outcome of one admission attempt."""

    ADMITTED = "admitted"
    #: The running batch is at its configured size cap.
    BATCH_FULL = "batch_full"
    #: Not enough GPU memory for the request's KV cache, even after evicting
    #: every idle cached adapter.
    NO_MEMORY = "no_memory"
    #: KV would fit, but the request's (missing) adapter does not — even after
    #: evicting all idle cached adapters.  This is the §4.3.3 bypass trigger.
    NO_ADAPTER_ROOM = "no_adapter_room"


class AdmissionContext:
    """One scheduling round's view of the engine.

    Schedulers call :meth:`try_admit` for each candidate in their preferred
    order; a successful call reserves resources immediately, so a later
    failure in the same round reflects what the earlier admissions consumed.
    """

    def __init__(self, engine: "ServingEngine") -> None:
        self._engine = engine
        self.admitted: list = []

    @property
    def now(self) -> float:
        return self._engine.sim.now

    @property
    def free_bytes(self) -> int:
        return self._engine.gpu.free_bytes

    @property
    def total_token_capacity(self) -> int:
        """System-wide scheduling tokens (for MLQ quota accounting)."""
        return self._engine.total_token_capacity

    def try_admit(self, request: "Request") -> AdmitResult:
        """Attempt to admit ``request`` to the batch right now."""
        result = self._engine.admit(request)
        if result is AdmitResult.ADMITTED:
            self.admitted.append(request)
        return result

    def is_adapter_available(self, request: "Request") -> bool:
        """True if the request's adapter is resident or in flight (no new load needed)."""
        if request.adapter_id is None:
            return True
        mgr = self._engine.adapter_manager
        return mgr.is_resident(request.adapter_id) or mgr.is_loading(request.adapter_id)

    def estimate_service_time(self, request: "Request") -> float:
        """Predicted service time of a request (scheduler-visible knowledge only)."""
        return self._engine.estimate_service_time(request)

    def estimate_earliest_release(self) -> float:
        """Predicted seconds until the next running request frees its memory."""
        return self._engine.estimate_earliest_release()

    def adapter_refcount(self, adapter_id: int) -> int:
        return self._engine.adapter_manager.refcount(adapter_id)

    def squash(self, request: "Request") -> None:
        """Abort an in-flight request for later re-execution (§4.3.3)."""
        self._engine.squash(request)
