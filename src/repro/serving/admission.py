"""Admission control: engine-level batch admission and cluster-level SLO gating.

Keeping all memory/adapter admission logic behind one ``try_admit`` call lets
every scheduling policy (FIFO, SJF, MLQ) share identical resource semantics —
the policies differ only in *which* requests they offer and in what order.

:class:`SloPolicy` is the *cluster-level* half of the story: past the SLO
knee (when the global admission queue is long enough that a new arrival
cannot meet its TTFT deadline anyway) serving it only burns capacity that
deadline-feasible requests could use.  The policy either sheds such arrivals
outright or moves them to a low-priority lane, turning overload into bounded
goodput loss instead of unbounded tail growth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.core.quotas import QueueStats, solve_quotas

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.serving.engine import ServingEngine
    from repro.workload.request import Request
    from repro.workload.tenants import SloClass


@dataclass(frozen=True)
class SloPolicy:
    """Cluster-level SLO admission policy (shed or deprioritize past the knee).

    The dispatcher consults the policy whenever an arrival would have to wait
    in the global admission queue: if the estimated queue wait already
    exceeds the request's TTFT deadline, admitting it cannot produce a
    deadline-compliant response, so the policy acts instead of queueing.

    Attributes:
        ttft_deadline: The TTFT SLO in seconds (e.g. the paper's 5x mean
            isolated latency).  An arrival whose estimated queue wait exceeds
            its effective deadline is past the knee.
        mode: ``"shed"`` rejects the request outright (it never runs, and is
            counted in ``DispatchStats.shed``); ``"deprioritize"`` moves it
            to a low-priority lane that the dispatcher drains only while the
            FIFO lane is empty — it still completes eventually, but never
            delays a deadline-feasible arrival.
        slowdown_target: Optional per-request tightening: when set together
            with ``isolated_ttft``, the effective deadline is
            ``min(ttft_deadline, slowdown_target * isolated_ttft(request))``
            so small requests are not admitted into waits that would blow
            their *relative* slowdown even while beating the absolute SLO.
        isolated_ttft: Callable mapping a request to its unloaded TTFT
            estimate in seconds (required when ``slowdown_target`` is set).
        classes: Optional map of SLO-class name to :class:`SloClass`-like
            objects (``deadline_scale`` and ``slowdown_target`` attributes).
            When set, a request carrying a known ``slo_class`` gets deadline
            ``ttft_deadline * deadline_scale`` (and the class's slowdown
            target, when it has one); requests with no class — or a name not
            in the map — keep the global deadline, so class-labelled and
            anonymous traffic mix under one policy.  ``classes=None`` is
            byte-identical to the historical single-deadline behavior.
    """

    MODES = ("shed", "deprioritize")

    ttft_deadline: float
    mode: str = "shed"
    slowdown_target: Optional[float] = None
    isolated_ttft: Optional[Callable[["Request"], float]] = None
    classes: Optional[Mapping[str, "SloClass"]] = None

    def __post_init__(self) -> None:
        if self.ttft_deadline <= 0:
            raise ValueError(f"ttft_deadline must be > 0, got {self.ttft_deadline}")
        if self.mode not in self.MODES:
            raise ValueError(f"unknown SLO mode {self.mode!r}; pick from {self.MODES}")
        if self.slowdown_target is not None:
            if self.slowdown_target <= 0:
                raise ValueError(
                    f"slowdown_target must be > 0, got {self.slowdown_target}")
            if self.isolated_ttft is None:
                raise ValueError("slowdown_target needs an isolated_ttft estimator")

    def class_of(self, request: "Request") -> Optional["SloClass"]:
        """The request's resolved SLO class, or ``None`` for global rules."""
        if self.classes is None:
            return None
        name = getattr(request, "slo_class", None)
        if name is None:
            return None
        return self.classes.get(name)

    def deadline_for(self, request: "Request") -> float:
        """The effective TTFT deadline of one request, in seconds."""
        cls = self.class_of(request)
        if cls is None:
            base = self.ttft_deadline
            slowdown = self.slowdown_target
        else:
            base = self.ttft_deadline * cls.deadline_scale
            # A class-level slowdown target overrides the global one; with
            # no isolated_ttft estimator it is ignored, not an error — the
            # class tables are workload-owned and must not constrain which
            # estimators a policy is built with.
            slowdown = (cls.slowdown_target if cls.slowdown_target is not None
                        else self.slowdown_target)
        if slowdown is None or self.isolated_ttft is None:
            return base
        return min(base, slowdown * self.isolated_ttft(request))

    def attained(self, request: "Request") -> bool:
        """True when the request finished within its effective deadline."""
        if not request.finished or request.first_token_time is None:
            return False
        return request.ttft <= self.deadline_for(request)

    def trace_args(self, request: "Request",
                   deadline: Optional[float] = None) -> dict:
        """Annotation payload for a shed/deprioritize trace instant.

        One place decides what an SLO decision looks like in a trace:
        the policy mode, the effective deadline that was missed, and the
        request's SLO class when it has one.  ``deadline`` lets callers
        that already computed :meth:`deadline_for` pass it through
        instead of paying the lookup twice.
        """
        args: dict = {
            "mode": self.mode,
            "deadline": self.deadline_for(request) if deadline is None
            else deadline,
        }
        slo_class = getattr(request, "slo_class", None)
        if slo_class is not None:
            args["slo_class"] = slo_class
        return args


@dataclass(frozen=True)
class TenantFairnessPolicy:
    """Per-tenant quotas and weighted-fair dispatch configuration.

    Attaching one to a :class:`DataParallelCluster` (``tenancy=``) switches
    its admission queue from a single FIFO to per-tenant lanes drained by
    deficit round-robin, with token-bucket rate caps on admission.  The
    policy object is immutable *configuration* — every cluster (each shard
    of a region) builds its own runtime lane state from it, so one policy
    can be shared across a whole region.

    Semantics:

    * **Weights** are relative service shares under contention: a lane's DRR
      quantum is its tenant's class weight (``weight_for``).  An idle fleet
      serves everyone immediately; weights only matter while lanes are
      backlogged.
    * **Quotas are relative shares, not hard partitions** (borrow-from-idle):
      a tenant whose token bucket is empty is throttled only while *another*
      lane has unthrottled backlogged work.  When the rest of the fleet is
      idle — or every backlogged lane is equally out of budget — the
      dispatcher serves past the cap and counts the overage as ``borrowed``
      instead of leaving capacity on the floor.

    Attributes:
        classes: Map of SLO-class name to :class:`SloClass`-like objects
            (``weight`` attribute); resolves each tenant's DRR quantum from
            the class its requests carry.
        quota_rps: Per-tenant admission-rate caps, requests/second.  Tenants
            absent from the map (and the anonymous ``None`` lane) are
            uncapped.  An empty map means weighted-fair dispatch only.
        quota_burst: Token-bucket depth, in requests: how far a tenant may
            burst above its sustained rate before throttling.
        default_weight: DRR quantum for tenants whose requests carry no (or
            an unknown) SLO class.
    """

    classes: Optional[Mapping[str, "SloClass"]] = None
    quota_rps: Mapping[int, float] = field(default_factory=dict)
    quota_burst: float = 8.0
    default_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.quota_burst < 1.0:
            raise ValueError(
                f"quota_burst must be >= 1 request, got {self.quota_burst}")
        if self.default_weight <= 0:
            raise ValueError(
                f"default_weight must be > 0, got {self.default_weight}")
        for tenant, rate in self.quota_rps.items():
            if rate <= 0:
                raise ValueError(
                    f"quota_rps[{tenant}] must be > 0, got {rate}")

    def weight_for(self, slo_class: Optional[str]) -> float:
        """DRR quantum for a request class (>= default for unknown names)."""
        if slo_class is not None and self.classes is not None:
            cls = self.classes.get(slo_class)
            if cls is not None:
                return float(cls.weight)
        return self.default_weight

    def rate_for(self, tenant_id: Optional[int]) -> Optional[float]:
        """Sustained admission cap of a tenant lane, or ``None`` if uncapped."""
        if tenant_id is None:
            return None
        return self.quota_rps.get(tenant_id)

    @classmethod
    def from_shares(
        cls,
        shares: Mapping[int, float],
        capacity_rps: float,
        headroom: float = 1.25,
        classes: Optional[Mapping[str, "SloClass"]] = None,
        quota_burst: float = 8.0,
    ) -> "TenantFairnessPolicy":
        """Caps proportional to traffic shares of a known fleet capacity.

        Each tenant may sustain ``headroom`` times its fair share of
        ``capacity_rps`` — quota enforcement should bite on *abusive*
        overload, not on ordinary burstiness.
        """
        if capacity_rps <= 0:
            raise ValueError(f"capacity_rps must be > 0, got {capacity_rps}")
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        total = sum(shares.values())
        if total <= 0:
            raise ValueError("shares must sum to > 0")
        quota = {
            tenant: capacity_rps * headroom * share / total
            for tenant, share in shares.items()
        }
        return cls(classes=classes, quota_rps=quota, quota_burst=quota_burst)

    @classmethod
    def from_queue_stats(
        cls,
        lane_stats: Mapping[int, QueueStats],
        total_tokens: float,
        slo: float,
        classes: Optional[Mapping[str, "SloClass"]] = None,
        quota_burst: float = 8.0,
    ) -> "TenantFairnessPolicy":
        """Lift the §4.3.5 M/M/1 token solver from adapter queues to tenants.

        Each tenant lane is an M/M/1 server: ``solve_quotas`` splits the
        fleet's token capacity into per-lane token quotas (SLO minima plus
        proportional surplus), and a lane's admission-rate cap is the service
        rate those tokens buy — ``mu = Tok / (S * D)`` requests/second, the
        same identity the adapter-level solver is built on.
        """
        if not lane_stats:
            raise ValueError("need at least one tenant lane")
        tenants = sorted(lane_stats)
        tokens = solve_quotas(
            [lane_stats[t] for t in tenants], total_tokens, slo)
        quota = {}
        for tenant, tok in zip(tenants, tokens):
            stats = lane_stats[tenant]
            s = max(1.0, stats.max_request_tokens)
            d = max(1e-6, stats.expected_duration)
            quota[tenant] = tok / (s * d)
        return cls(classes=classes, quota_rps=quota, quota_burst=quota_burst)


class AdmitResult(enum.Enum):
    """Outcome of one admission attempt."""

    ADMITTED = "admitted"
    #: The running batch is at its configured size cap.
    BATCH_FULL = "batch_full"
    #: Not enough GPU memory for the request's KV cache, even after evicting
    #: every idle cached adapter.
    NO_MEMORY = "no_memory"
    #: KV would fit, but the request's (missing) adapter does not — even after
    #: evicting all idle cached adapters.  This is the §4.3.3 bypass trigger.
    NO_ADAPTER_ROOM = "no_adapter_room"


class AdmissionContext:
    """One scheduling round's view of the engine.

    Schedulers call :meth:`try_admit` for each candidate in their preferred
    order; a successful call reserves resources immediately, so a later
    failure in the same round reflects what the earlier admissions consumed.
    """

    def __init__(self, engine: "ServingEngine") -> None:
        self._engine = engine
        self.admitted: list = []

    @property
    def now(self) -> float:
        return self._engine.sim.now

    @property
    def free_bytes(self) -> int:
        return self._engine.gpu.free_bytes

    @property
    def total_token_capacity(self) -> int:
        """System-wide scheduling tokens (for MLQ quota accounting)."""
        return self._engine.total_token_capacity

    def try_admit(self, request: "Request") -> AdmitResult:
        """Attempt to admit ``request`` to the batch right now."""
        result = self._engine.admit(request)
        if result is AdmitResult.ADMITTED:
            self.admitted.append(request)
        return result

    def is_adapter_available(self, request: "Request") -> bool:
        """True if the request's adapter is resident or in flight (no new load needed)."""
        if request.adapter_id is None:
            return True
        mgr = self._engine.adapter_manager
        return mgr.is_resident(request.adapter_id) or mgr.is_loading(request.adapter_id)

    def estimate_service_time(self, request: "Request") -> float:
        """Predicted service time of a request (scheduler-visible knowledge only)."""
        return self._engine.estimate_service_time(request)

    def estimate_earliest_release(self) -> float:
        """Predicted seconds until the next running request frees its memory."""
        return self._engine.estimate_earliest_release()

    def adapter_refcount(self, adapter_id: int) -> int:
        return self._engine.adapter_manager.refcount(adapter_id)

    def squash(self, request: "Request") -> None:
        """Abort an in-flight request for later re-execution (§4.3.3)."""
        self._engine.squash(request)
