"""Admission control: engine-level batch admission and cluster-level SLO gating.

Keeping all memory/adapter admission logic behind one ``try_admit`` call lets
every scheduling policy (FIFO, SJF, MLQ) share identical resource semantics —
the policies differ only in *which* requests they offer and in what order.

:class:`SloPolicy` is the *cluster-level* half of the story: past the SLO
knee (when the global admission queue is long enough that a new arrival
cannot meet its TTFT deadline anyway) serving it only burns capacity that
deadline-feasible requests could use.  The policy either sheds such arrivals
outright or moves them to a low-priority lane, turning overload into bounded
goodput loss instead of unbounded tail growth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.serving.engine import ServingEngine
    from repro.workload.request import Request


@dataclass(frozen=True)
class SloPolicy:
    """Cluster-level SLO admission policy (shed or deprioritize past the knee).

    The dispatcher consults the policy whenever an arrival would have to wait
    in the global admission queue: if the estimated queue wait already
    exceeds the request's TTFT deadline, admitting it cannot produce a
    deadline-compliant response, so the policy acts instead of queueing.

    Attributes:
        ttft_deadline: The TTFT SLO in seconds (e.g. the paper's 5x mean
            isolated latency).  An arrival whose estimated queue wait exceeds
            its effective deadline is past the knee.
        mode: ``"shed"`` rejects the request outright (it never runs, and is
            counted in ``DispatchStats.shed``); ``"deprioritize"`` moves it
            to a low-priority lane that the dispatcher drains only while the
            FIFO lane is empty — it still completes eventually, but never
            delays a deadline-feasible arrival.
        slowdown_target: Optional per-request tightening: when set together
            with ``isolated_ttft``, the effective deadline is
            ``min(ttft_deadline, slowdown_target * isolated_ttft(request))``
            so small requests are not admitted into waits that would blow
            their *relative* slowdown even while beating the absolute SLO.
        isolated_ttft: Callable mapping a request to its unloaded TTFT
            estimate in seconds (required when ``slowdown_target`` is set).
    """

    MODES = ("shed", "deprioritize")

    ttft_deadline: float
    mode: str = "shed"
    slowdown_target: Optional[float] = None
    isolated_ttft: Optional[Callable[["Request"], float]] = None

    def __post_init__(self) -> None:
        if self.ttft_deadline <= 0:
            raise ValueError(f"ttft_deadline must be > 0, got {self.ttft_deadline}")
        if self.mode not in self.MODES:
            raise ValueError(f"unknown SLO mode {self.mode!r}; pick from {self.MODES}")
        if self.slowdown_target is not None:
            if self.slowdown_target <= 0:
                raise ValueError(
                    f"slowdown_target must be > 0, got {self.slowdown_target}")
            if self.isolated_ttft is None:
                raise ValueError("slowdown_target needs an isolated_ttft estimator")

    def deadline_for(self, request: "Request") -> float:
        """The effective TTFT deadline of one request, in seconds."""
        if self.slowdown_target is None or self.isolated_ttft is None:
            return self.ttft_deadline
        return min(self.ttft_deadline,
                   self.slowdown_target * self.isolated_ttft(request))

    def attained(self, request: "Request") -> bool:
        """True when the request finished within its effective deadline."""
        if not request.finished or request.first_token_time is None:
            return False
        return request.ttft <= self.deadline_for(request)


class AdmitResult(enum.Enum):
    """Outcome of one admission attempt."""

    ADMITTED = "admitted"
    #: The running batch is at its configured size cap.
    BATCH_FULL = "batch_full"
    #: Not enough GPU memory for the request's KV cache, even after evicting
    #: every idle cached adapter.
    NO_MEMORY = "no_memory"
    #: KV would fit, but the request's (missing) adapter does not — even after
    #: evicting all idle cached adapters.  This is the §4.3.3 bypass trigger.
    NO_ADAPTER_ROOM = "no_adapter_room"


class AdmissionContext:
    """One scheduling round's view of the engine.

    Schedulers call :meth:`try_admit` for each candidate in their preferred
    order; a successful call reserves resources immediately, so a later
    failure in the same round reflects what the earlier admissions consumed.
    """

    def __init__(self, engine: "ServingEngine") -> None:
        self._engine = engine
        self.admitted: list = []

    @property
    def now(self) -> float:
        return self._engine.sim.now

    @property
    def free_bytes(self) -> int:
        return self._engine.gpu.free_bytes

    @property
    def total_token_capacity(self) -> int:
        """System-wide scheduling tokens (for MLQ quota accounting)."""
        return self._engine.total_token_capacity

    def try_admit(self, request: "Request") -> AdmitResult:
        """Attempt to admit ``request`` to the batch right now."""
        result = self._engine.admit(request)
        if result is AdmitResult.ADMITTED:
            self.admitted.append(request)
        return result

    def is_adapter_available(self, request: "Request") -> bool:
        """True if the request's adapter is resident or in flight (no new load needed)."""
        if request.adapter_id is None:
            return True
        mgr = self._engine.adapter_manager
        return mgr.is_resident(request.adapter_id) or mgr.is_loading(request.adapter_id)

    def estimate_service_time(self, request: "Request") -> float:
        """Predicted service time of a request (scheduler-visible knowledge only)."""
        return self._engine.estimate_service_time(request)

    def estimate_earliest_release(self) -> float:
        """Predicted seconds until the next running request frees its memory."""
        return self._engine.estimate_earliest_release()

    def adapter_refcount(self, adapter_id: int) -> int:
        return self._engine.adapter_manager.refcount(adapter_id)

    def squash(self, request: "Request") -> None:
        """Abort an in-flight request for later re-execution (§4.3.3)."""
        self._engine.squash(request)
