"""Observability: request-lifecycle tracing, metrics, and trace exporters.

The package has three halves, all deterministic on the simulated clock:

* :mod:`repro.obs.tracer` — a :class:`Tracer` collecting per-request
  **spans** (queue, dispatch, adapter-load, prefill, decode, execute) and
  **instant annotations** (SLO shed/deprioritize, region spill/steal,
  fault injection, migration, replica lifecycle, autoscaler actions).
  Instrumented subsystems hold a ``_tracer`` attribute that defaults to
  ``None``; every hook site is guarded by ``if self._tracer is not None``
  so the disabled path costs one attribute check and never a call.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  callable-backed gauges and histograms, sampled into a deterministic
  timeseries by a periodic simulator event
  (:meth:`repro.sim.simulator.Simulator.schedule_periodic`).
* :mod:`repro.obs.export` — the only module in the runtime tree allowed
  to open files for writing (simlint rule D009): Chrome/Perfetto
  trace-event JSON (openable at ui.perfetto.dev), per-request span
  waterfalls for slow-request forensics, and metrics CSV/JSON dumps.

Tracing is attached *after* construction (``system.attach_tracer(...)``,
``region.attach_tracer(...)``) and records no simulator events of its
own, so a tracer-attached run produces byte-identical ``summary()``
output to a detached one.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    Instant,
    Span,
    Tracer,
    dispatcher_tid,
    replica_tid,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "dispatcher_tid",
    "replica_tid",
]
