"""Exporters: Perfetto trace JSON, span waterfalls, metrics CSV/JSON.

This is the **only** runtime module allowed to open files for writing
(simlint rule D009): instrumentation stays side-effect free on the sim
path, and everything durable funnels through here after (or outside)
the run.

The Chrome/Perfetto trace-event format reference:
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
— we emit complete events (``ph: "X"``), instant events (``ph: "i"``)
and ``thread_name`` metadata (``ph: "M"``), timestamps in integer
microseconds of simulated time.  The resulting ``.json`` opens directly
in https://ui.perfetto.dev (or ``chrome://tracing``).

Byte-identity: timestamps quantize through one deterministic
float-seconds -> int-microseconds conversion, events serialize in
recording order, and JSON keys are sorted — two same-seed runs export
byte-identical files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

from repro.obs.tracer import PID

#: Keys every exported trace event carries (schema contract, also
#: asserted by the CI trace-smoke step).
TRACE_EVENT_REQUIRED_KEYS = ("ph", "pid", "tid", "name", "ts")


def _us(seconds: float) -> int:
    """Simulated seconds -> integer microseconds (the trace time unit)."""
    return int(round(seconds * 1_000_000))


# --------------------------------------------------------------------- #
# Perfetto / Chrome trace-event JSON
# --------------------------------------------------------------------- #
def perfetto_events(tracer: "Tracer") -> list[dict]:
    """The trace-event list: track metadata, then spans, then instants."""
    events: list[dict] = []
    for tid in sorted(tracer.tracks):
        events.append({
            "ph": "M", "pid": PID, "tid": tid, "ts": 0,
            "name": "thread_name",
            "args": {"name": tracer.tracks[tid]},
        })
    for span in tracer.spans:
        start = _us(span.start)
        args = dict(span.args)
        if span.request_id is not None:
            args["request_id"] = span.request_id
        events.append({
            "ph": "X", "pid": PID, "tid": span.tid, "ts": start,
            "dur": max(0, _us(span.end) - start),
            "name": span.name, "cat": "request", "args": args,
        })
    for instant in tracer.instants:
        events.append({
            "ph": "i", "pid": PID, "tid": instant.tid,
            "ts": _us(instant.time), "s": "t",
            "name": instant.name, "cat": "annotation",
            "args": dict(instant.args),
        })
    return events


def perfetto_payload(tracer: "Tracer") -> dict:
    """The full JSON-object trace-file payload."""
    return {"traceEvents": perfetto_events(tracer),
            "displayTimeUnit": "ms"}


def write_perfetto(tracer: "Tracer", path: str) -> None:
    """Write the trace to ``path`` as Perfetto-openable JSON."""
    with open(path, "w") as fh:
        json.dump(perfetto_payload(tracer), fh, indent=1, sort_keys=True)


def validate_trace_events(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is schema-valid.

    Checks the contract the CI smoke step relies on: a ``traceEvents``
    list whose entries all carry :data:`TRACE_EVENT_REQUIRED_KEYS`,
    integer timestamps, and ``dur`` on every complete event.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        missing = [k for k in TRACE_EVENT_REQUIRED_KEYS if k not in event]
        if missing:
            raise ValueError(f"traceEvents[{i}] missing keys {missing}")
        if not isinstance(event["ts"], int):
            raise ValueError(f"traceEvents[{i}] ts must be int microseconds")
        if event["ph"] == "X" and not isinstance(event.get("dur"), int):
            raise ValueError(f"traceEvents[{i}] complete event needs int dur")


# --------------------------------------------------------------------- #
# Slow-trace waterfalls
# --------------------------------------------------------------------- #
def span_waterfall(tracer: "Tracer", request_id: int,
                   width: int = 40) -> str:
    """One request's spans as an aligned text waterfall.

    Each line shows the span name, its absolute interval, its duration,
    and a bar positioned within the request's overall extent — the
    at-a-glance answer to "where did the time go".
    """
    spans = tracer.spans_for(request_id)
    if not spans:
        return f"request {request_id}: no spans recorded"
    lo = min(s.start for s in spans)
    hi = max(s.end for s in spans)
    extent = max(hi - lo, 1e-12)
    meta = tracer.requests.get(request_id, {})
    title = f"request {request_id}"
    details = [f"{k}={meta[k]}" for k in ("tenant", "slo_class", "adapter",
                                          "retries") if k in meta]
    if meta.get("ttft") is not None:
        details.append(f"ttft={meta['ttft']:.3f}s")
    if meta.get("e2e") is not None:
        details.append(f"e2e={meta['e2e']:.3f}s")
    if details:
        title += "  (" + ", ".join(details) + ")"
    lines = [title]
    for span in spans:
        left = int((span.start - lo) / extent * width)
        filled = max(1, int(round(span.duration / extent * width)))
        filled = min(filled, width - left)
        bar = " " * left + "#" * filled
        track = tracer.tracks.get(span.tid, f"tid{span.tid}")
        lines.append(
            f"  {span.name:<13} {span.start:10.4f} -> {span.end:10.4f} "
            f"({span.duration:8.4f}s) |{bar:<{width}}| {track}")
    return "\n".join(lines)


def slow_trace_report(tracer: "Tracer", k: int, width: int = 40) -> str:
    """Waterfalls for the ``k`` worst-TTFT requests, worst first."""
    rows = tracer.slowest(k)
    if not rows:
        return "no finished requests recorded"
    blocks = [f"--- slowest {len(rows)} requests by TTFT ---"]
    blocks += [span_waterfall(tracer, row["request_id"], width=width)
               for row in rows]
    return "\n\n".join(blocks)


# --------------------------------------------------------------------- #
# Metrics dumps
# --------------------------------------------------------------------- #
def metrics_rows(registry: "MetricsRegistry") -> list[dict]:
    """The sampled timeseries, one dict per sample."""
    return list(registry.samples)


def write_metrics_csv(registry: "MetricsRegistry", path: str) -> None:
    """Dump the sampled timeseries as CSV (columns in registry order)."""
    columns = registry.column_names()
    lines = [",".join(columns)]
    for row in registry.samples:
        lines.append(",".join(_csv_cell(row.get(c)) for c in columns))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def _csv_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)  # shortest round-trippable form, deterministic
    return str(value)


def write_metrics_json(registry: "MetricsRegistry", path: str) -> None:
    """Dump samples plus histogram summaries as sorted-key JSON."""
    payload = {
        "columns": registry.column_names(),
        "samples": registry.samples,
        "histograms": registry.histogram_summaries(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def write_metrics(registry: "MetricsRegistry", path: str) -> None:
    """Dump metrics to ``path``, format chosen by extension (.csv/.json)."""
    name = str(path)
    if name.endswith(".csv"):
        write_metrics_csv(registry, path)
    elif name.endswith(".json"):
        write_metrics_json(registry, path)
    else:
        raise ValueError(
            f"metrics path must end in .csv or .json, got {name!r}")


def iter_trace_files(paths: Iterable[str]) -> Iterable[dict]:
    """Load and validate each trace file (helper for tooling/tests)."""
    for path in paths:
        with open(path) as fh:
            payload = json.load(fh)
        validate_trace_events(payload)
        yield payload


def load_trace(path: str) -> dict:
    """Load one trace file, validating the schema."""
    payload: Optional[dict] = None
    for payload in iter_trace_files([path]):
        break
    assert payload is not None
    return payload
