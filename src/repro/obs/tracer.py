"""Per-request span tracing on the simulated clock.

A :class:`Tracer` is a passive sink: instrumented subsystems push spans
and instants into it as their existing event callbacks run, and it never
schedules simulator events of its own.  Determinism therefore comes for
free — hook sites fire in the simulator's strict ``(time, seq)`` order,
so two same-seed runs append the exact same records in the exact same
order, and the exported JSON is byte-identical.

**Null-object hook protocol.**  Every instrumented object carries a
``_tracer`` attribute that defaults to ``None`` and is only set by an
explicit ``attach_tracer(...)`` call after construction.  Hook sites are
written as::

    if self._tracer is not None:
        self._tracer.instant("shed", now, self._trace_tid, ...)

so the disabled path is a single attribute load and an ``is not None``
test — no call, no allocation, nothing for the hot-path benchmark to
notice (the CI gate holds the tracer-off path to the same 15k events/s
floor as before, and the tracer-on path to a bounded overhead).

**Track model** (mirrors the Chrome trace-event pid/tid scheme):

* one process (``pid`` 1) per run;
* dispatcher shard ``s`` gets track ``tid = s + 1``;
* replica ``r`` behind shard ``s`` gets ``tid = 1000 * (s + 1) + r``.

The stride keeps replica tracks grouped under their shard in the
Perfetto UI and leaves room for fleets up to 999 replicas per shard —
larger than anything the benchmarks run.

**Span vocabulary** (all built from the request's timeline stamps at
finish time, so replica attribution is exact even after migration):

==============  ==========================================================
span            interval
==============  ==========================================================
``dispatch``    arrival -> engine submit (global-queue wait; recorded on
                the dispatcher track by the queue-release path)
``queue``       engine submit -> batch admission
``adapter_load``  admission -> adapter ready (only when the request
                actually waited on a load)
``prefill``     prefill start -> first token
``decode``      first token -> finish
``execute``     prefill start -> finish (parent of prefill/decode)
==============  ==========================================================

Instant annotations cover everything that *shapes* a request's timeline
without being an interval on it: SLO ``shed``/``deprioritize``, region
``spill``/``steal``, fault injection, crash ``migrate`` retries, replica
lifecycle transitions, and autoscaler actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: The single trace-event process id; tracks are threads under it.
PID = 1

#: Replica tracks are strided per shard (shard s replica r ->
#: ``1000 * (s + 1) + r``) so they group under their dispatcher.
REPLICA_TID_STRIDE = 1000


def dispatcher_tid(shard: int = 0) -> int:
    """Track id of dispatcher shard ``shard`` (shard 0 -> tid 1)."""
    return shard + 1


def replica_tid(shard: int, index: int) -> int:
    """Track id of replica ``index`` behind dispatcher shard ``shard``."""
    return REPLICA_TID_STRIDE * (shard + 1) + index


@dataclass(slots=True)
class Span:
    """One closed interval on a track, in simulated seconds."""

    name: str
    start: float
    end: float
    tid: int
    request_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class Instant:
    """One point annotation on a track, in simulated seconds."""

    name: str
    time: float
    tid: int
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects spans and instants; exporters read it after the run.

    Records arrive in simulator event order (hook sites are inside event
    callbacks) and are never reordered here, so the collection order is
    itself deterministic.

    The per-request finish path is the volume producer (4-5 spans per
    request), so :meth:`record_request` only appends one compact tuple of
    timeline stamps; the :class:`Span` objects and slow-trace rows are
    materialized lazily, on first read through :attr:`spans` /
    :attr:`requests` — after the timed run, not inside it.  That keeps
    the tracer-on overhead inside the benchmark gate without losing any
    record.
    """

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self.instants: list[Instant] = []
        #: tid -> human-readable track name (Perfetto ``thread_name``).
        self.tracks: dict[int, str] = {}
        #: request_id -> summary row for the slow-trace report, written
        #: when the request's raw finish record is materialized.
        self._requests: dict[int, dict] = {}
        #: Unmaterialized finish records as parallel flat lists (see
        #: :meth:`record_request`) — appending an existing object and an
        #: int allocates no new GC-tracked containers, which keeps the
        #: collector quiet during the timed run.
        self._raw_requests: list = []
        self._raw_tids: list[int] = []

    @property
    def spans(self) -> list[Span]:
        """Every recorded span, materializing pending finish records."""
        self._flush()
        return self._spans

    @property
    def requests(self) -> dict[int, dict]:
        """Per-request summary rows (request_id -> row), materialized."""
        self._flush()
        return self._requests

    # ------------------------------------------------------------------ #
    # Track registration
    # ------------------------------------------------------------------ #
    def register_track(self, tid: int, name: str) -> None:
        """Name a track; the first registration of a tid wins."""
        self.tracks.setdefault(tid, name)

    # ------------------------------------------------------------------ #
    # Raw record sinks
    # ------------------------------------------------------------------ #
    def span(self, name: str, start: float, end: float, tid: int,
             request_id: Optional[int] = None, **args: Any) -> None:
        """Record one closed interval (``end >= start`` expected)."""
        self._spans.append(Span(name, start, end, tid, request_id, args))

    def instant(self, name: str, time: float, tid: int,
                **args: Any) -> None:
        """Record one point annotation."""
        self.instants.append(Instant(name, time, tid, args))

    # ------------------------------------------------------------------ #
    # Request lifecycle (called by ServingEngine._finish)
    # ------------------------------------------------------------------ #
    def record_request(self, request: Any, tid: int) -> None:
        """Log the request's timeline stamps; spans come later.

        Called once per finished request from the owning engine's finish
        path — the per-event hot path, so this is two bare list appends:
        no tuple, no dict, no attribute reads (requests are never
        recycled, so their stamps are stable after finish).  The stamps
        (enqueue/admit/adapter-ready/prefill/first-token) survive
        migration, so the materialized spans land on the replica that
        actually served the request.
        """
        self._raw_requests.append(request)
        self._raw_tids.append(tid)

    def _flush(self) -> None:
        """Materialize pending finish records into spans + summary rows.

        Order is the recording (finish) order, so two same-seed runs
        materialize identical lists regardless of *when* each flushed.
        """
        if not self._raw_requests:
            return
        raw = zip(self._raw_requests, self._raw_tids)
        self._raw_requests, self._raw_tids = [], []
        append = self._spans.append
        for request, tid in raw:
            rid = request.request_id
            arrival = request.arrival_time
            enq = request.enqueue_time
            admit = request.admit_time
            ready = request.adapter_ready_time
            prefill = request.prefill_start_time
            first = request.first_token_time
            finish = request.finish_time
            retries = request.retry_count
            adapter = request.adapter_id
            tenant = request.tenant_id
            slo_class = request.slo_class
            args: dict = {}
            if adapter is not None:
                args["adapter"] = adapter
            if tenant is not None:
                args["tenant"] = tenant
            if slo_class is not None:
                args["slo_class"] = slo_class
            if retries:
                args["retries"] = retries
            if enq is not None and admit is not None:
                append(Span("queue", enq, admit, tid, rid, args))
            if admit is not None and ready is not None and ready > admit:
                append(Span("adapter_load", admit, ready, tid, rid, args))
            if prefill is not None and finish is not None:
                append(Span("execute", prefill, finish, tid, rid, args))
            if prefill is not None and first is not None:
                append(Span("prefill", prefill, first, tid, rid, args))
            if first is not None and finish is not None:
                append(Span("decode", first, finish, tid, rid, args))
            row = dict(
                request_id=rid, tid=tid, arrival=arrival,
                ttft=(first - arrival) if first is not None else None,
                e2e=(finish - arrival) if finish is not None else None,
                retries=retries)
            row.update(args)
            self._requests[rid] = row

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by exporters and tests)
    # ------------------------------------------------------------------ #
    def spans_for(self, request_id: int) -> list[Span]:
        """Every span of one request, in recording order."""
        return [s for s in self.spans if s.request_id == request_id]

    def span_names(self) -> set[str]:
        return {s.name for s in self.spans}

    def instant_names(self) -> set[str]:
        return {i.name for i in self.instants}

    def slowest(self, k: int) -> list[dict]:
        """The ``k`` finished requests with the worst TTFT, worst first.

        Ties break on request id so the report is deterministic.
        """
        rows = [r for r in self.requests.values() if r["ttft"] is not None]
        rows.sort(key=lambda r: (-r["ttft"], r["request_id"]))
        return rows[:max(0, k)]
