"""Counters, gauges, histograms, and deterministic timeseries sampling.

A :class:`MetricsRegistry` is the in-run half of the observability
layer: subsystems register cheap *gauges* (zero-argument callables read
at sample time), bump *counters* on events they already handle, and feed
*histograms* with per-request observations.  A periodic simulator event
(:meth:`~repro.sim.simulator.Simulator.schedule_periodic`) snapshots
every counter and gauge into one row of a timeseries.

Determinism contract: sampling reads state, never mutates it, so the
extra sampler events shift later event sequence numbers uniformly
without reordering any existing pair of events — a sampled run produces
the same ``summary()`` as an unsampled one, and two same-seed sampled
runs produce byte-identical rows.  Rows iterate metric names in sorted
order for the same reason.

Nothing in this module opens files; CSV/JSON dumps live in
:mod:`repro.obs.export` (the one module simlint rule D009 allows to
write during a run).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount


class Gauge:
    """A point-in-time reading backed by a zero-argument callable."""

    __slots__ = ("name", "read")

    def __init__(self, name: str, read: Callable[[], float]) -> None:
        self.name = name
        self.read = read


class Histogram:
    """A stream of observations, summarized at export time.

    Observations are kept verbatim (runs are bounded, and exactness
    beats bucketing error for the percentile claims the reports make);
    the summary is computed on demand.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observations (NaN when empty)."""
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict:
        """count/mean/min/max/p50/p99 of everything observed so far."""
        values = self.values
        if not values:
            return dict(count=0, mean=float("nan"), min=float("nan"),
                        max=float("nan"), p50=float("nan"),
                        p99=float("nan"))
        return dict(
            count=len(values),
            mean=sum(values) / len(values),
            min=min(values),
            max=max(values),
            p50=self.percentile(50),
            p99=self.percentile(99),
        )


class MetricsRegistry:
    """A named collection of counters/gauges/histograms plus its samples.

    Registration is idempotent by name (``counter("x")`` twice returns
    the same object) but a name can hold only one metric kind.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Sampled timeseries: one dict per sample, ``time`` first, then
        #: every counter and gauge in sorted-name order.
        self.samples: list[dict] = []
        self._sim: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _claim(self, name: str, kind: str) -> None:
        for store, label in ((self._counters, "counter"),
                             (self._gauges, "gauge"),
                             (self._histograms, "histogram")):
            if label != kind and name in store:
                raise ValueError(
                    f"metric {name!r} is already registered as a {label}")

    def counter(self, name: str) -> Counter:
        self._claim(name, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str, read: Callable[[], float]) -> Gauge:
        self._claim(name, "gauge")
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} is already registered")
        gauge = Gauge(name, read)
        self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str) -> Histogram:
        self._claim(name, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, now: float) -> dict:
        """Snapshot every counter and gauge into one timeseries row."""
        row: dict = {"time": now}
        for name in sorted(self._counters):
            row[name] = self._counters[name].value
        for name in sorted(self._gauges):
            row[name] = float(self._gauges[name].read())
        self.samples.append(row)
        return row

    def install(self, sim: Any, interval: float, until: float) -> None:
        """Sample every ``interval`` simulated seconds until ``until``.

        Uses :meth:`Simulator.schedule_periodic`; the sampler callback
        only reads, so it cannot perturb the run it is observing.
        """
        self._sim = sim
        sim.schedule_periodic(interval, lambda: self.sample(sim.now), until)

    # ------------------------------------------------------------------ #
    # Export views (serialization itself lives in obs.export)
    # ------------------------------------------------------------------ #
    def column_names(self) -> list[str]:
        """The sampled columns: ``time`` plus sorted metric names."""
        return (["time"] + sorted(self._counters) + sorted(self._gauges))

    def histogram_summaries(self) -> dict[str, dict]:
        """Name -> :meth:`Histogram.summary`, sorted by name."""
        return {name: self._histograms[name].summary()
                for name in sorted(self._histograms)}
