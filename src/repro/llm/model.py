"""Base-model geometry.

The byte-level quantities used everywhere in the simulator (weight footprint,
KV-cache bytes per token, LoRA adapter bytes per rank) are derived from the
transformer geometry of the Llama family, in fp16:

* weights:            ``2 bytes * n_params``
* KV cache per token: ``2 (K and V) * n_layers * hidden_size * 2 bytes``
* LoRA adapter:       ``2 (A and B matrices) * hidden * rank * n_lora_proj
                      * n_layers * 2 bytes``

With ``n_lora_proj = 4`` (q/k/v/o projections, the S-LoRA default) a rank-32
adapter for Llama-7B is exactly 64 MB — the number quoted in §3.2 of the
paper — and the Llama-70B rank-32 adapter lands at 320 MB (paper: "grows to
256 MB", same order).
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024
GB = 1024 * MB
FP16_BYTES = 2


@dataclass(frozen=True)
class ModelSpec:
    """Geometry of a base LLM.

    Attributes:
        name: Human-readable name, e.g. ``"llama-7b"``.
        n_params: Total parameter count of the base model.
        n_layers: Number of transformer layers.
        hidden_size: Model (embedding) dimension.
        n_lora_proj: Number of attention projections a LoRA adapter touches.
        dtype_bytes: Bytes per parameter / activation element (fp16 = 2).
    """

    name: str
    n_params: int
    n_layers: int
    hidden_size: int
    n_lora_proj: int = 4
    dtype_bytes: int = FP16_BYTES

    @property
    def weight_bytes(self) -> int:
        """GPU bytes occupied by the base-model weights."""
        return self.n_params * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers."""
        return 2 * self.n_layers * self.hidden_size * self.dtype_bytes

    def adapter_bytes(self, rank: int) -> int:
        """Bytes occupied by a LoRA adapter of the given rank."""
        if rank <= 0:
            raise ValueError(f"adapter rank must be positive, got {rank}")
        return (
            2 * self.hidden_size * rank * self.n_lora_proj
            * self.n_layers * self.dtype_bytes
        )

    def flops_per_token(self) -> float:
        """Dense forward FLOPs per token (the standard 2*N approximation)."""
        return 2.0 * self.n_params


LLAMA_7B = ModelSpec(name="llama-7b", n_params=6_738_000_000, n_layers=32, hidden_size=4096)
LLAMA_13B = ModelSpec(name="llama-13b", n_params=13_016_000_000, n_layers=40, hidden_size=5120)
LLAMA_30B = ModelSpec(name="llama-30b", n_params=32_529_000_000, n_layers=60, hidden_size=6656)
LLAMA_70B = ModelSpec(name="llama-70b", n_params=68_977_000_000, n_layers=80, hidden_size=8192)

MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec for spec in (LLAMA_7B, LLAMA_13B, LLAMA_30B, LLAMA_70B)
}
