"""Base LLM geometry and the calibrated latency cost model."""

from repro.llm.model import (
    ModelSpec,
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_30B,
    LLAMA_70B,
    MODEL_ZOO,
)
from repro.llm.costmodel import CostModel, CostModelParams

__all__ = [
    "ModelSpec",
    "LLAMA_7B",
    "LLAMA_13B",
    "LLAMA_30B",
    "LLAMA_70B",
    "MODEL_ZOO",
    "CostModel",
    "CostModelParams",
]
