"""Analytic latency cost model, calibrated against the paper's Figure 2.

The model decomposes iteration latency the same way the paper's §3.1
characterization does:

* **Base prefill** is compute-bound: ``2 * n_params * n_tokens`` FLOPs at the
  GPU's peak fp16 throughput times an efficiency factor.
* **LoRA prefill overhead** comes from S-LoRA's MBGMM gather kernels.  The
  paper (and dLoRA Fig. 5) observe it is expensive *even for small ranks*,
  i.e. it has a large rank-independent component.  We model it as
  ``(fixed + per_rank * rank)`` microseconds per token.
* **Decode step** is memory-bound: one pass over the (sharded) weights plus
  reading every running request's KV cache, plus a small per-request LoRA
  gather overhead and a fixed per-iteration system overhead.

Calibration (Llama-7B on A40, 512-token "medium" input, unloaded system,
10 GB/s effective PCIe):

====  =========  ============  ===========  ==========
rank  base exec  adapter exec  adapter load  TTFT (ms)
====  =========  ============  ===========  ==========
8     57.6       14.0          1.8           73.4   (paper:  74)
16    57.6       17.1          3.4           78.1   (paper:  78)
32    57.6       23.4          6.6           87.6   (paper:  88)
64    57.6       35.9          13.0          106.5  (paper: 107)
128   57.6       60.9          25.8          144.3  (paper: 144)
====  =========  ============  ===========  ==========

The rank-128 loading share is 25.8/144.3 = 17.9% (paper: 17.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.hardware.gpu import GpuSpec
from repro.llm.model import ModelSpec


@dataclass(frozen=True)
class CostModelParams:
    """Tunable constants of the latency model.

    The defaults reproduce the Figure 2 calibration table above; they are the
    single source of truth for every experiment.
    """

    #: Achieved fraction of peak fp16 FLOPs during prefill.
    flops_efficiency: float = 0.80
    #: Rank-independent LoRA prefill cost, seconds per token.
    lora_prefill_fixed_per_token: float = 21.2e-6
    #: Rank-proportional LoRA prefill cost, seconds per token per rank unit.
    lora_prefill_per_rank_per_token: float = 0.764e-6
    #: Achieved fraction of peak HBM bandwidth during decode.
    hbm_efficiency: float = 1.0
    #: Per-running-request decode overhead (batch bookkeeping), seconds.
    decode_per_request: float = 60e-6
    #: Rank-independent per-request LoRA decode gather cost, seconds.
    lora_decode_fixed: float = 40e-6
    #: Rank-proportional per-request LoRA decode cost, seconds per rank unit.
    lora_decode_per_rank: float = 1.5e-6
    #: Fixed per-iteration system overhead (scheduler, kernel launches), seconds.
    iteration_overhead: float = 1.0e-3


class CostModel:
    """Latency model for one model replica on one (possibly TP) device.

    Args:
        model: Base-model geometry.
        gpu: GPU spec (peak FLOPs, HBM bandwidth).
        params: Cost constants; defaults are the Figure 2 calibration.
        compute_speedup: Effective compute scaling of tensor parallelism
            (1.0 for a single GPU; ``TensorParallelGroup.compute_speedup``
            otherwise).  Both FLOPs and weight/KV reads scale with it because
            weights and KV are sharded across the group.
    """

    def __init__(
        self,
        model: ModelSpec,
        gpu: GpuSpec,
        params: CostModelParams = CostModelParams(),
        compute_speedup: float = 1.0,
    ) -> None:
        if compute_speedup <= 0:
            raise ValueError(f"compute_speedup must be positive, got {compute_speedup}")
        self.model = model
        self.gpu = gpu
        self.params = params
        self.compute_speedup = compute_speedup
        # Pre-derived per-token constants.
        peak_flops = gpu.peak_tflops * 1e12 * params.flops_efficiency * compute_speedup
        self._prefill_s_per_token = model.flops_per_token() / peak_flops
        hbm = gpu.mem_bandwidth_bytes * params.hbm_efficiency * compute_speedup
        self._weights_read_s = model.weight_bytes / hbm
        self._kv_read_s_per_token = model.kv_bytes_per_token / hbm

    # ------------------------------------------------------------------ #
    # Prefill
    # ------------------------------------------------------------------ #
    def base_prefill_time(self, n_tokens: int) -> float:
        """Base-model prefill compute time for ``n_tokens`` input tokens."""
        return self._prefill_s_per_token * n_tokens

    def lora_prefill_time(self, n_tokens: int, rank: int) -> float:
        """Extra prefill time contributed by a LoRA adapter of ``rank``."""
        p = self.params
        per_token = p.lora_prefill_fixed_per_token + p.lora_prefill_per_rank_per_token * rank
        # The gather kernels do not benefit from tensor parallelism as much as
        # the dense matmuls; scale them with the same speedup for simplicity.
        return per_token * n_tokens / self.compute_speedup

    def prefill_time(self, n_tokens: int, rank: Optional[int] = None) -> float:
        """Total prefill compute time for one request (base + LoRA)."""
        t = self.base_prefill_time(n_tokens)
        if rank is not None:
            t += self.lora_prefill_time(n_tokens, rank)
        return t

    # ------------------------------------------------------------------ #
    # Decode
    # ------------------------------------------------------------------ #
    def decode_step_time(
        self,
        n_requests: int,
        total_context_tokens: int,
        total_rank: int = 0,
        n_lora_requests: int = 0,
    ) -> float:
        """One decode iteration for a batch, from aggregate batch state.

        Args:
            n_requests: Running requests in the batch.
            total_context_tokens: Sum of context lengths (input + generated).
            total_rank: Sum of adapter ranks over LoRA requests in the batch.
            n_lora_requests: How many of the requests use an adapter.
        """
        if n_requests <= 0:
            return 0.0
        p = self.params
        t = self._weights_read_s
        t += self._kv_read_s_per_token * total_context_tokens
        t += p.decode_per_request * n_requests
        t += p.lora_decode_fixed * n_lora_requests / self.compute_speedup
        t += p.lora_decode_per_rank * total_rank / self.compute_speedup
        return t

    # ------------------------------------------------------------------ #
    # Whole iterations and whole requests
    # ------------------------------------------------------------------ #
    def iteration_time(
        self,
        prefill_work: Iterable[tuple[int, Optional[int]]],
        n_decode: int,
        decode_context_tokens: int,
        decode_total_rank: int = 0,
        decode_lora_requests: int = 0,
    ) -> float:
        """Latency of one engine iteration.

        ``prefill_work`` is an iterable of ``(n_tokens, rank_or_None)`` for the
        requests (or prefill chunks) processed this iteration; the decode
        arguments describe the running batch, as in :meth:`decode_step_time`.
        """
        t = self.params.iteration_overhead
        for n_tokens, rank in prefill_work:
            t += self.prefill_time(n_tokens, rank)
        t += self.decode_step_time(
            n_decode, decode_context_tokens, decode_total_rank, decode_lora_requests
        )
        return t

    def isolated_request_time(
        self,
        input_tokens: int,
        output_tokens: int,
        rank: Optional[int] = None,
        adapter_load_time: float = 0.0,
    ) -> float:
        """End-to-end latency of a request running alone on an idle system.

        This is the denominator of the paper's per-request *slowdown* metric
        (Figure 8) and the basis of the SLO (5x the average isolated time).
        """
        if output_tokens < 1:
            raise ValueError("a request generates at least one token")
        t = adapter_load_time
        t += self.params.iteration_overhead + self.prefill_time(input_tokens, rank)
        context = input_tokens
        for _ in range(output_tokens - 1):
            context += 1
            t += self.params.iteration_overhead + self.decode_step_time(
                1, context,
                total_rank=rank or 0,
                n_lora_requests=1 if rank is not None else 0,
            )
        return t

    def isolated_ttft(
        self,
        input_tokens: int,
        rank: Optional[int] = None,
        adapter_load_time: float = 0.0,
    ) -> float:
        """Time to first token of a request running alone on an idle system."""
        return (
            adapter_load_time
            + self.params.iteration_overhead
            + self.prefill_time(input_tokens, rank)
        )

    def estimate_service_time(
        self,
        input_tokens: int,
        predicted_output_tokens: int,
        rank: Optional[int] = None,
    ) -> float:
        """Scheduler-facing service-time estimate (uses the *predicted* output).

        A closed-form version of :meth:`isolated_request_time` (no per-token
        loop) — used by the MLQ quota solver and the bypass heuristic, where
        the scheduler only knows predicted lengths.
        """
        predicted_output_tokens = max(1, predicted_output_tokens)
        t = self.prefill_time(input_tokens, rank)
        steps = predicted_output_tokens - 1
        avg_context = input_tokens + steps / 2.0
        per_step = self.decode_step_time(
            1, int(avg_context),
            total_rank=rank or 0,
            n_lora_requests=1 if rank is not None else 0,
        )
        t += steps * (per_step + self.params.iteration_overhead)
        return t + self.params.iteration_overhead
