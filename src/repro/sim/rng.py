"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (arrival process, length
sampling, adapter assignment, predictor noise, ...) draws from its own named
stream derived from one master seed.  This way, changing e.g. the predictor
accuracy does not perturb the arrival process, which keeps A/B comparisons
between system variants paired — the same trick the paper gets for free by
replaying one recorded trace against every system.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A factory of named ``numpy.random.Generator`` substreams.

    >>> streams = RngStreams(seed=7)
    >>> a1 = streams.get("arrivals").random()
    >>> b = RngStreams(seed=7)
    >>> a2 = b.get("arrivals").random()
    >>> a1 == a2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created and cached on first use)."""
        if name not in self._cache:
            # Hash the stream name into spawn-key material so that streams are
            # independent of the order in which they are requested.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            seq = np.random.SeedSequence([self.seed, *digest.tolist()])
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family of streams, e.g. one per data-parallel engine."""
        child = RngStreams(self.seed)
        child._prefix = name  # type: ignore[attr-defined]
        # Implemented via name prefixing to stay order-independent.
        parent_get = child.get

        def prefixed_get(stream_name: str) -> np.random.Generator:
            return parent_get(f"{name}/{stream_name}")

        child.get = prefixed_get  # type: ignore[method-assign]
        return child
