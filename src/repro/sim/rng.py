"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (arrival process, length
sampling, adapter assignment, predictor noise, ...) draws from its own named
stream derived from one master seed.  This way, changing e.g. the predictor
accuracy does not perturb the arrival process, which keeps A/B comparisons
between system variants paired — the same trick the paper gets for free by
replaying one recorded trace against every system.

The set of stream names used on the simulation path is closed: every
``RngStreams.get()`` / ``spawn()`` call site must use a string literal
registered in :data:`STREAM_REGISTRY`, which makes the full set of
stochastic inputs statically enumerable (and lets ``simlint`` rule D006
verify it — see :mod:`repro.analysis`).  Registration is a *static*
contract only: ``get()`` itself stays permissive so tests and notebooks can
mint scratch streams freely.
"""

from __future__ import annotations

import numpy as np

#: Registry of every named stream drawn on the simulation path, with the
#: component that owns it.  Adding a stochastic component means adding a
#: row here — simlint rule D006 rejects ``get()``/``spawn()`` calls whose
#: literal is missing, so this table cannot silently go stale.
#: ``spawn()`` prefixes (e.g. ``"engine0"``) derive per-replica families
#: of these same names and are registered as spawn scopes.
STREAM_REGISTRY: dict[str, str] = {
    "trace": "workload generation: arrival times, lengths, adapter picks",
    "arrivals": "arrival process when sampled separately from the trace",
    "predictor": "output-length predictor hit/miss and error draws",
    "faults": "fault injector: MTTF gaps, target picks, repair windows",
    "tenants": "multi-tenant labelling: Zipf tenant draws over a trace",
    "storm": "hot-tenant storm overlay: Poisson burst arrivals (fig32)",
    "engine0": "spawn scope: per-replica stream family for replica 0",
}


class RngStreams:
    """A factory of named ``numpy.random.Generator`` substreams.

    >>> streams = RngStreams(seed=7)
    >>> a1 = streams.get("arrivals").random()
    >>> b = RngStreams(seed=7)
    >>> a2 = b.get("arrivals").random()
    >>> a1 == a2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        #: Namespace prepended to every stream name (set by :meth:`spawn`;
        #: ``""`` for a root family).  A plain attribute — spawned children
        #: pickle and type-check like any other instance.
        self._prefix: str = ""
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created and cached on first use)."""
        full_name = self._prefix + name
        if full_name not in self._cache:
            # Hash the stream name into spawn-key material so that streams are
            # independent of the order in which they are requested.
            digest = np.frombuffer(full_name.encode("utf-8"), dtype=np.uint8)
            seq = np.random.SeedSequence([self.seed, *digest.tolist()])
            self._cache[full_name] = np.random.default_rng(seq)
        return self._cache[full_name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family of streams, e.g. one per data-parallel engine.

        Implemented via name prefixing (``child.get("trace")`` draws the
        parent's ``"name/trace"`` stream) to stay order-independent.
        """
        child = RngStreams(self.seed)
        child._prefix = f"{self._prefix}{name}/"
        return child
