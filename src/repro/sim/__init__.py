"""Discrete-event simulation kernel.

This package provides the minimal, deterministic event-driven substrate on
which the serving system runs: a simulated clock, an event heap with stable
FIFO ordering for simultaneous events, and named, reproducible random-number
streams.
"""

from repro.sim.simulator import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "Simulator", "RngStreams"]
