"""Event heap and simulated clock.

The simulator is intentionally tiny: the serving engine drives almost all of
the logic, and only needs ``schedule`` / ``cancel`` / ``run``.  Events that
fire at the same simulated time are processed in scheduling order, which
keeps every run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`Simulator.cancel`.  A cancelled event stays in the heap but is
    skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "popped")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.popped = False  # no longer in the heap (fired or discarded)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, fn={name}, cancelled={self.cancelled})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0  # cancelled events still sitting in the heap

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (not-yet-fired, not-cancelled) events in the heap."""
        return len(self._heap) - self._cancelled

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice is harmless.

        Cancelled events are lazily skipped when popped; when they outnumber
        the live ones the heap is compacted in place, so callers that cancel
        frequently (autoscaler control loops, drain timers) cannot bloat the
        heap without bound.
        """
        if not event.cancelled:
            event.cancelled = True
            # An already-fired event is no longer in the heap: cancelling it
            # stays a no-op and must not skew the pending-event accounting.
            if not event.popped:
                self._cancelled += 1
                if self._cancelled > len(self._heap) - self._cancelled:
                    self._compact()

    def cancel_if(self, predicate: Callable[[Event], bool]) -> int:
        """Bulk-cancel every pending event matching ``predicate``.

        One pass over the heap, then a single compaction check — the
        per-event :meth:`cancel` path would re-test the compaction threshold
        (and potentially rebuild the heap) once per match.  Used by crash
        handling to drop a dead replica's pending finish events: a failed
        engine must not execute callbacks scheduled while it was alive.
        Returns the number of events cancelled.
        """
        cancelled = 0
        for event in self._heap:
            if not event.cancelled and predicate(event):
                event.cancelled = True
                cancelled += 1
        self._cancelled += cancelled
        if self._cancelled > len(self._heap) - self._cancelled:
            self._compact()
        return cancelled

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Ordering is untouched: events sort totally by ``(time, seq)``, so a
        rebuilt heap pops in exactly the order the lazy-skip path would.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).popped = True
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fires earlier, so time-based telemetry has a defined
        end point.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self.now:
            self.now = until
