"""Event heap and simulated clock.

The simulator is intentionally tiny: the serving engine drives almost all of
the logic, and only needs ``schedule`` / ``cancel`` / ``run``.  Events that
fire at the same simulated time are processed in scheduling order, which
keeps every run bit-for-bit reproducible.

Performance: the heap stores ``(time, seq, Event)`` triples, so ``heapq``
orders entries with C-level tuple comparisons instead of calling
``Event.__lt__`` (which must build two tuples per comparison).  ``run``
inlines the pop loop and drains same-timestamp bursts (a batch of finish
events, a wave of arrivals) in a tight inner loop without re-checking the
horizon — the first event at a timestamp already proved the burst is in
range.  Event order is untouched: everything still fires strictly by
``(time, seq)``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`Simulator.cancel`.  A cancelled event stays in the heap but is
    skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "popped")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.popped = False  # no longer in the heap (fired or discarded)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, fn={name}, cancelled={self.cancelled})"


#: A heap entry: ``(time, seq, event)``.  Comparisons never reach the Event
#: (seq is unique), so heap maintenance stays in C.
_HeapEntry = tuple[float, int, Event]


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0  # cancelled events still sitting in the heap

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (not-yet-fired, not-cancelled) events in the heap."""
        return len(self._heap) - self._cancelled

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def schedule_periodic(self, interval: float, callback: Callable[[], Any],
                          until: float) -> Optional[Event]:
        """Fire ``callback()`` every ``interval`` seconds, up to ``until``.

        The generalized self-rescheduling-closure idiom (metrics
        sampling, memory telemetry): each firing reschedules the next
        one, and the chain stops once the next firing would land past
        ``until`` — a bounded horizon is *required*, because an
        unconditionally rescheduling event would keep ``run()`` alive
        forever on runs that drain their heap naturally.

        Returns the first scheduled :class:`Event` (cancel it to stop
        the whole chain before it starts), or ``None`` when even the
        first firing would land past ``until``.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if self.now + interval > until:
            return None

        def _tick() -> None:
            callback()
            if self.now + interval <= until:
                self.schedule(interval, _tick)

        return self.schedule(interval, _tick)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice is harmless.

        Cancelled events are lazily skipped when popped; when they outnumber
        the live ones the heap is compacted in place, so callers that cancel
        frequently (autoscaler control loops, drain timers) cannot bloat the
        heap without bound.
        """
        if not event.cancelled:
            event.cancelled = True
            # An already-fired event is no longer in the heap: cancelling it
            # stays a no-op and must not skew the pending-event accounting.
            if not event.popped:
                self._cancelled += 1
                if self._cancelled > len(self._heap) - self._cancelled:
                    self._compact()

    def cancel_if(self, predicate: Callable[[Event], bool]) -> int:
        """Bulk-cancel every pending event matching ``predicate``.

        One pass over the heap, then a single compaction check — the
        per-event :meth:`cancel` path would re-test the compaction threshold
        (and potentially rebuild the heap) once per match.  Used by crash
        handling to drop a dead replica's pending finish events: a failed
        engine must not execute callbacks scheduled while it was alive.
        Returns the number of events cancelled.
        """
        cancelled = 0
        for _, _, event in self._heap:
            if not event.cancelled and predicate(event):
                event.cancelled = True
                cancelled += 1
        self._cancelled += cancelled
        if self._cancelled > len(self._heap) - self._cancelled:
            self._compact()
        return cancelled

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Ordering is untouched: entries sort totally by ``(time, seq)``, so a
        rebuilt heap pops in exactly the order the lazy-skip path would.
        Compaction mutates the list *in place* (slice assignment) because
        ``run`` keeps a local alias to it across event callbacks — rebinding
        ``self._heap`` to a fresh list would strand that alias on the old one
        and silently drop everything scheduled afterwards.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].popped = True
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        When the run stops *naturally* — the heap drains, or the next live
        event lies past ``until`` — the clock is advanced to exactly
        ``until`` (when given), so time-based telemetry has a defined end
        point.  A ``max_events`` stop is different: it is a mid-flight pause
        (callers resume with another ``run``), so the clock stays at the
        last executed event and is *not* advanced to ``until``.
        """
        heap = self._heap
        heappop = heapq.heappop
        unlimited = max_events is None
        remaining = -1 if max_events is None else max_events
        executed = 0
        while heap:
            if not unlimited and executed >= remaining:
                return
            time, _, event = heap[0]
            if event.cancelled:
                heappop(heap)
                event.popped = True
                self._cancelled -= 1
                continue
            if until is not None and time > until:
                break
            heappop(heap)
            event.popped = True
            self.now = time
            self._processed += 1
            executed += 1
            event.callback(*event.args)
            # Same-timestamp burst: every event at this exact time is already
            # inside the horizon, so fire the whole batch without re-testing
            # ``until``.  Strict (time, seq) order is preserved — events the
            # callbacks schedule at the same timestamp enter the heap with
            # higher seq and are picked up right here.
            while heap and heap[0][0] == time:
                if not unlimited and executed >= remaining:
                    return
                _, _, event = heappop(heap)
                event.popped = True
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._processed += 1
                executed += 1
                event.callback(*event.args)
        if until is not None and until > self.now:
            self.now = until
