"""Fault model for the serving fleet: crashes, degradation, stalls."""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultSchedule"]
