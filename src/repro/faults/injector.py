"""Deterministic fault injection for the data-parallel serving fleet.

Production availability questions — "what does a replica crash mid-burst
cost us?", "how much does self-healing buy at a given failure rate?" —
need a *failure model*, and a reproducible one: a chaos test whose faults
move when the seed does cannot be compared across system variants.  This
module supplies both halves:

* :class:`FaultSchedule` — scripted faults at explicit simulated times
  ("crash replica 1 at t=110s"), for experiments that need one surgical
  failure in a known workload phase.
* :class:`FaultInjector` — fires faults on the shared simulator clock,
  either from a schedule or from a seeded random process (MTTF-spaced
  failures on uniformly chosen serving replicas, drawing from the same
  :class:`~repro.sim.rng.RngStreams` machinery as every other stochastic
  component, so the fault stream is independent of the arrival process and
  identical across A/B system variants).

Fault kinds (all defined on the cluster/engine layer, see
``DataParallelCluster.fail_replica`` / ``stall_replica`` and
``ServingEngine.set_rate_multiplier``):

``crash``
    The replica dies instantly: terminal FAILED state, pending engine
    events cancelled, queued + unstarted work migrated back through the
    normal admission path (or stranded as ``lost`` with ``migrate=False``).
``degrade`` / ``recover``
    A service-rate multiplier on the engine (0.5 = twice as slow).  Spec
    capability cannot see it; the ``ObservedCapabilityEstimator`` converges
    to the new rate and shifts routing weight — that convergence is the
    contract this fault exercises.
``stall``
    A transient admission outage: the replica accepts nothing for a
    window, then rejoins the dispatch set and absorbs queued work.

The injector never imports the cluster or engine modules — it drives
duck-typed surfaces only, keeping the dependency graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Protocol, Sequence

import numpy as np

#: Recognized fault kinds (``transient_stall`` is accepted as an alias of
#: ``stall`` in schedules).
FAULT_KINDS = ("crash", "degrade", "recover", "stall")


class SimClock(Protocol):
    """The slice of :class:`~repro.sim.simulator.Simulator` the injector uses."""

    now: float

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Any: ...

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Any: ...


class TracerLike(Protocol):
    """The slice of :class:`repro.obs.Tracer` the injector drives (duck-
    typed: this module never imports ``repro.obs``)."""

    def instant(self, name: str, time: float, tid: int,
                **args: object) -> Any: ...


class ReplicaLike(Protocol):
    """Lifecycle surface of a cluster replica handle."""

    @property
    def index(self) -> int: ...

    @property
    def is_active(self) -> bool: ...

    @property
    def is_draining(self) -> bool: ...

    @property
    def is_retired(self) -> bool: ...

    @property
    def is_failed(self) -> bool: ...


class ClusterLike(Protocol):
    """The fault surface of ``DataParallelCluster`` (duck-typed, no import)."""

    @property
    def handles(self) -> Sequence[ReplicaLike]: ...

    @property
    def engines(self) -> Sequence[object]: ...

    def fail_replica(self, index: int, *, migrate: bool = ...,
                     retry_started: bool = ...) -> Any: ...

    def stall_replica(self, index: int, duration: float) -> Any: ...


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    Attributes:
        time: Simulated time the fault fires, seconds.
        kind: One of :data:`FAULT_KINDS`.
        replica: Target replica index (must exist when the fault fires).
        magnitude: ``degrade`` only — the service-rate multiplier applied
            to the engine, in (0, 1] (``recover`` restores 1.0).
        duration: ``stall`` only — seconds the replica accepts nothing.
    """

    time: float
    kind: str
    replica: int
    magnitude: float = 0.5
    duration: float = 5.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}")
        if self.replica < 0:
            raise ValueError(f"replica index must be >= 0, got {self.replica}")
        if self.kind == "degrade" and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                f"degrade magnitude must be in (0, 1], got {self.magnitude}")
        if self.kind == "stall" and self.duration <= 0:
            raise ValueError(
                f"stall duration must be > 0, got {self.duration}")


class FaultSchedule:
    """An ordered list of scripted :class:`FaultEvent` entries."""

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: list[FaultEvent] = sorted(events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the CLI schedule syntax.

        Comma-separated entries, colon-separated fields::

            TIME:KIND:REPLICA[:VALUE]

        where ``VALUE`` is the rate multiplier for ``degrade`` and the
        window in seconds for ``stall`` (ignored otherwise).  Example:
        ``"110:crash:1,60:degrade:0:0.5,90:recover:0,120:stall:2:5"``.
        """
        events: list[FaultEvent] = []
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            fields = entry.split(":")
            if not 3 <= len(fields) <= 4:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected "
                    "TIME:KIND:REPLICA[:VALUE]")
            try:
                time = float(fields[0])
                replica = int(fields[2])
            except ValueError:
                raise ValueError(
                    f"bad fault entry {entry!r}: TIME must be a float and "
                    "REPLICA an int") from None
            kind = fields[1].strip().lower()
            if kind == "transient_stall":
                kind = "stall"
            magnitude, duration = 0.5, 5.0
            if len(fields) == 4:
                try:
                    value = float(fields[3])
                except ValueError:
                    raise ValueError(
                        f"bad fault entry {entry!r}: VALUE must be a float"
                    ) from None
                if kind == "degrade":
                    magnitude = value
                elif kind == "stall":
                    duration = value
                else:
                    raise ValueError(
                        f"bad fault entry {entry!r}: {kind} takes no VALUE")
            events.append(FaultEvent(time=time, kind=kind, replica=replica,
                                     magnitude=magnitude, duration=duration))
        if not events:
            raise ValueError(f"empty fault schedule {text!r}")
        return cls(events)


class FaultInjector:
    """Fires replica faults on the shared simulator clock.

    Two sources, composable:

    * ``schedule`` — scripted :class:`FaultSchedule` entries, fired at
      their exact times.
    * ``mttf`` — a random failure process: inter-failure gaps drawn from
      an exponential with mean ``mttf`` seconds, each failure hitting a
      uniformly chosen *serving* (active or draining) replica.  With
      ``mttr`` unset the failure is a crash; with ``mttr`` set it is a
      transient outage (stall) whose window is exponential with mean
      ``mttr`` — the replica is repaired rather than replaced.

    ``migrate``/``retry_started`` select the crash recovery model (see
    ``DataParallelCluster.fail_replica``); ``migrate=False`` is the
    no-recovery baseline that strands a dead replica's work.

    Every fault lands in :attr:`log` (time, kind, replica, parameters) so
    experiments can line faults up against SLO timelines.
    """

    def __init__(
        self,
        cluster: ClusterLike,
        *,
        sim: Optional[SimClock] = None,
        schedule: Optional[FaultSchedule] = None,
        mttf: Optional[float] = None,
        mttr: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        migrate: bool = True,
        retry_started: bool = True,
    ) -> None:
        if mttf is not None and mttf <= 0:
            raise ValueError(f"mttf must be > 0, got {mttf}")
        if mttr is not None and mttr <= 0:
            raise ValueError(f"mttr must be > 0, got {mttr}")
        if mttr is not None and mttf is None:
            raise ValueError("mttr needs mttf (no failures to repair)")
        if mttf is not None and rng is None:
            raise ValueError("random faults (mttf) need an rng")
        self.cluster = cluster
        self._sim = sim
        self.schedule = schedule
        self.mttf = mttf
        self.mttr = mttr
        self.rng = rng
        self.migrate = migrate
        self.retry_started = retry_started
        #: Every fault fired: dicts of time/kind/replica plus parameters.
        self.log: list[dict[str, object]] = []
        self.crashes = 0
        self.stalls = 0
        self.degrades = 0
        self.recovers = 0
        self._until: Optional[float] = None
        self._started = False
        #: Observability hook (see repro.obs): ``None`` keeps the ``_log``
        #: hook site a bare attribute check.
        self._tracer: Optional[TracerLike] = None
        self._trace_tid = 1

    def attach_tracer(self, tracer: TracerLike, tid: int = 1) -> None:
        """Mirror every fault-log entry as a ``fault`` instant on the
        dispatcher track ``tid`` of the attached tracer."""
        self._tracer = tracer
        self._trace_tid = tid

    # ------------------------------------------------------------------ #
    def _simulator(self) -> Optional[SimClock]:
        if self._sim is not None:
            return self._sim
        accessor = getattr(self.cluster, "_simulator", None)
        sim: Optional[SimClock] = accessor() if callable(accessor) else None
        return sim

    def start(self, until: Optional[float] = None) -> None:
        """Arm the injector: schedule scripted faults, seed the random
        process.  ``until`` bounds random failures (typically the last
        arrival time — failing replicas after the workload ends only adds
        noise to the accounting)."""
        if self._started:
            return
        self._started = True
        self._until = until
        sim = self._simulator()
        if sim is None:
            raise ValueError(
                "fault injection needs a simulated clock: pass sim= or a "
                "cluster exposing one")
        if self.schedule is not None:
            for event in self.schedule:
                sim.schedule_at(max(event.time, sim.now), self._fire, event)
        if self.mttf is not None:
            self._schedule_random_failure(sim)

    # ------------------------------------------------------------------ #
    # Scripted faults
    # ------------------------------------------------------------------ #
    def _fire(self, event: FaultEvent) -> None:
        if event.replica >= len(self.cluster.handles):
            self._log(event.time, event.kind, event.replica, skipped="no such replica")
            return
        if event.kind == "crash":
            self._crash(event.replica)
        elif event.kind == "stall":
            self._stall(event.replica, event.duration)
        elif event.kind == "degrade":
            self._set_rate(event.replica, event.magnitude, "degrade")
        else:  # recover
            self._set_rate(event.replica, 1.0, "recover")

    def _crash(self, index: int) -> None:
        handle = self.cluster.handles[index]
        if handle.is_retired or handle.is_failed:
            self._log(self._now(), "crash", index, skipped="already gone")
            return
        self.cluster.fail_replica(index, migrate=self.migrate,
                                  retry_started=self.retry_started)
        self.crashes += 1
        self._log(self._now(), "crash", index, migrate=self.migrate)

    def _stall(self, index: int, duration: float) -> None:
        handle = self.cluster.handles[index]
        if not handle.is_active:
            self._log(self._now(), "stall", index, skipped="not serving")
            return
        self.cluster.stall_replica(index, duration)
        self.stalls += 1
        self._log(self._now(), "stall", index, duration=duration)

    def _set_rate(self, index: int, multiplier: float, kind: str) -> None:
        handle = self.cluster.handles[index]
        if handle.is_retired or handle.is_failed:
            self._log(self._now(), kind, index, skipped="already gone")
            return
        engine = self.cluster.engines[index]
        setter = getattr(engine, "set_rate_multiplier", None)
        if not callable(setter):
            self._log(self._now(), kind, index, skipped="engine has no rate knob")
            return
        setter(multiplier)
        if kind == "degrade":
            self.degrades += 1
        else:
            self.recovers += 1
        self._log(self._now(), kind, index, multiplier=multiplier)

    # ------------------------------------------------------------------ #
    # Random failure process (MTTF/MTTR)
    # ------------------------------------------------------------------ #
    def _schedule_random_failure(self, sim: SimClock) -> None:
        assert self.rng is not None and self.mttf is not None
        gap = float(self.rng.exponential(self.mttf))
        when = sim.now + gap
        if self._until is not None and when > self._until:
            return  # the workload ends before the next drawn failure
        sim.schedule(gap, self._random_failure)

    def _random_failure(self) -> None:
        sim = self._simulator()
        # Target a uniformly chosen replica the fault can actually act on:
        # crashes accept anything serving (active or draining), repairable
        # outages (stalls) only active replicas — stalling a drainer is a
        # no-op on the dispatch path, which would silently lower the
        # effective fault rate below the configured MTTF.  The draws happen
        # even when no target exists, and the target pick uses a unit
        # uniform (fixed bit-stream consumption, unlike bounded integers'
        # rejection sampling) so the fault *times* stay aligned across
        # system variants whose fleet sizes diverge (paired comparisons).
        assert self.rng is not None and sim is not None
        outage = self.mttr is not None
        pool = [h.index for h in self.cluster.handles
                if h.is_active or (not outage and h.is_draining)]
        pick = self.rng.random()  # in [0, 1): floor(pick * n) < n
        duration = (float(self.rng.exponential(self.mttr))
                    if self.mttr is not None else None)
        if pool:
            index = pool[int(pick * len(pool))]
            if duration is not None:
                self._stall(index, duration)
            else:
                self._crash(index)
        else:
            self._log(self._now(), "stall" if outage else "crash",
                      -1, skipped="no eligible replica")
        self._schedule_random_failure(sim)

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        sim = self._simulator()
        return sim.now if sim is not None else 0.0

    def _log(self, time: float, kind: str, replica: int,
             **extra: object) -> None:
        entry: dict[str, object] = dict(time=time, kind=kind, replica=replica)
        entry.update(extra)
        self.log.append(entry)
        if self._tracer is not None:
            self._tracer.instant("fault", time, self._trace_tid,
                                 kind=kind, replica=replica, **extra)
