"""Benchmark-suite helpers.

Every benchmark regenerates one paper figure at a reduced scale (shorter
simulated durations, coarser load grids) so the full suite runs in minutes.
``run_experiment`` wraps the experiment entry point under pytest-benchmark
with a single round — these are end-to-end simulations, not microbenchmarks,
so repetition buys nothing.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    def _run(fn, **params):
        result = benchmark.pedantic(lambda: fn(**params), rounds=1, iterations=1)
        assert result.rows, f"experiment {result.experiment} produced no rows"
        print()
        print(result.to_table())
        return result

    return _run
