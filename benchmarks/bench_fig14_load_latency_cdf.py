"""Bench: regenerate Figure 14 (adapter-load latency on the critical path)."""

from repro.experiments.fig14_load_latency_cdf import run


def test_fig14(run_experiment):
    result = run_experiment(run, duration=90.0)
    rows = {row["preset"]: row for row in result.rows}
    # The cache removes loading from the critical path for most requests
    # (paper: 75% hit the cache).
    assert rows["chameleon"]["zero_load_share"] > 0.7
    assert rows["chameleon"]["zero_load_share"] > rows["slora"]["zero_load_share"]
    # Chameleon's residual loads are cheaper than S-LoRA's worst case.
    assert rows["chameleon"]["p99_ms"] <= rows["slora"]["p100_ms"]
