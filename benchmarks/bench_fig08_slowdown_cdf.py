"""Bench: regenerate Figure 8 (slowdown CDF by scheduling policy)."""

from repro.experiments.fig08_slowdown_cdf import run


def test_fig08(run_experiment):
    result = run_experiment(run, duration=90.0, medium_rps=8.0, high_rps=11.0)
    high = {row["policy"]: row for row in result.rows if row["load"] == "high"}
    # Under high load the deployed Chameleon policy has the lowest tail
    # slowdown among the iteration-level policies (paper Figure 8b).
    assert high["OptimizedSched"]["p99"] <= high["FIFO"]["p99"]
    assert high["OptimizedSched"]["p99"] <= high["SJF"]["p99"]
    # Slowdowns are always >= ~1 (never faster than isolated).
    for row in result.rows:
        assert row["p50"] >= 0.99
