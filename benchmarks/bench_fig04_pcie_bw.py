"""Bench: regenerate Figure 4 (normalized PCIe bandwidth vs load)."""

from repro.experiments.fig04_pcie_bw import run


def test_fig04(run_experiment):
    result = run_experiment(run, duration=60.0, loads=(5.0, 8.0))
    for row in result.rows:
        # More distinct adapters -> more PCIe traffic.
        assert row["lora_500_norm_bw"] > row["lora_50_norm_bw"] > row["lora_1_norm_bw"]
    # Traffic grows with load for the many-adapter pools.
    assert result.rows[-1]["lora_500_norm_bw"] > result.rows[0]["lora_500_norm_bw"]
