"""Bench: regenerate Figure 16 (queueing delay per size class and policy)."""

from repro.experiments.fig16_queue_delay import run


def test_fig16(run_experiment):
    result = run_experiment(run, duration=150.0)
    rows = {row["policy"]: row for row in result.rows}

    def ratio(row):
        return row["large_delay_s"] / max(1e-9, row["small_delay_s"])

    # SJF's starvation signature: its large/small wait ratio dwarfs FIFO's
    # (paper: 5.15 s vs 1.5 s while FIFO is roughly uniform).
    assert ratio(rows["SJF"]) > 1.5 * ratio(rows["FIFO"])
    # The Chameleon scheduler's small-class delay beats FIFO's (express lane).
    assert rows["ChameleonSched"]["small_delay_s"] <= rows["FIFO"]["small_delay_s"]
    # Paper: Chameleon brings every class's wait below 8% of its E2E.
    for cls in ("small", "medium", "large"):
        assert rows["ChameleonSched"][f"{cls}_e2e_share"] < 0.08
