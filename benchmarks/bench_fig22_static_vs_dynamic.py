"""Bench: regenerate Figure 22 (dynamic vs static queue configuration)."""

from repro.experiments.fig22_static_vs_dynamic import run


def test_fig22(run_experiment):
    result = run_experiment(run, duration=90.0)
    assert {row["load"] for row in result.rows} == {"low", "medium", "high"}
    for row in result.rows:
        # Dynamic reconfiguration is never much worse than the static split...
        assert row["chameleon_norm"] <= 1.25
    # ...and the high-load point shows no regression (paper: ~10% better).
    high = next(row for row in result.rows if row["load"] == "high")
    assert high["chameleon_norm"] <= 1.1
