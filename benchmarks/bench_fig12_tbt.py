"""Bench: regenerate Figure 12 (P99 TBT vs load)."""

from repro.experiments.fig12_tbt import run


def test_fig12(run_experiment):
    result = run_experiment(run, duration=90.0, loads=(6.0, 9.0))
    for row in result.rows:
        # Chameleon's TBT is no worse than S-LoRA's.
        assert row["chameleon_p99_tbt_ms"] <= row["slora_p99_tbt_ms"] * 1.1
