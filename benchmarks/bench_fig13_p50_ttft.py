"""Bench: regenerate Figure 13 (P50 TTFT vs load)."""

from repro.experiments.fig13_p50_ttft import run


def test_fig13(run_experiment):
    result = run_experiment(run, duration=90.0, loads=(6.0, 9.0, 12.0))
    for row in result.rows:
        assert row["chameleon_p50_s"] <= row["slora_p50_s"]
    # Median benefits grow with load (paper: 13.9% -> 48.1%).
    assert result.rows[-1]["reduction"] >= result.rows[0]["reduction"] - 0.05
