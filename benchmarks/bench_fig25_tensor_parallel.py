"""Bench: regenerate Figure 25 (multi-GPU tensor-parallel comparison)."""

import numpy as np

from repro.experiments.fig25_tensor_parallel import run


def test_fig25(run_experiment):
    result = run_experiment(run, duration=90.0)
    for row in result.rows:
        assert row["norm_p99"] <= 1.05
    # The average reduction widens with the TP degree (paper Figure 25).
    mean_norm = {
        tp: float(np.mean([row["norm_p99"] for row in result.rows if row["tp"] == tp]))
        for tp in (1, 2, 4)
    }
    assert mean_norm[4] <= mean_norm[1] + 0.05
