"""Bench: regenerate Figure 19 (predictor-accuracy sensitivity)."""

from repro.experiments.fig19_predictor_accuracy import run


def test_fig19(run_experiment):
    result = run_experiment(run, duration=120.0)
    chameleon = {row["accuracy"]: row for row in result.rows
                 if row["mode"] == "Chameleon"}
    # The full WRS at 80% accuracy tracks the oracle closely (paper).
    assert chameleon[0.8]["p99_ttft_s"] <= chameleon[1.0]["p99_ttft_s"] * 1.5
    # The observed accuracy matches the knob.
    for row in result.rows:
        if row["accuracy"] < 1.0:
            assert abs(row["observed_accuracy"] - row["accuracy"]) < 0.08
