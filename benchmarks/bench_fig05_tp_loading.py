"""Bench: regenerate Figure 5 (adapter-loading share under TP)."""

from repro.experiments.fig05_tp_loading import run


def test_fig05(run_experiment):
    result = run_experiment(run)
    for row in result.rows:
        # The loading share grows with the TP degree...
        assert row["load_share_tp2"] < row["load_share_tp4"] < row["load_share_tp8"]
    # ...and with the adapter rank.
    shares_tp4 = [row["load_share_tp4"] for row in result.rows]
    assert shares_tp4 == sorted(shares_tp4)
    # Paper: ~68% for rank 32 at TP4.
    rank32 = next(r for r in result.rows if r["rank"] == 32)
    assert 0.45 <= rank32["load_share_tp4"] <= 0.85
