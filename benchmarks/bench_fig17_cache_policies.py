"""Bench: regenerate Figure 17 (cache eviction policy comparison)."""

from repro.experiments.fig17_cache_policies import run


def test_fig17(run_experiment):
    result = run_experiment(run, duration=120.0)
    total = next(row for row in result.rows if row["rank"] == "total")
    # Every caching scheme beats S-LoRA on total P99 (paper: -18/-22/-26%).
    assert total["Ch-LRU_norm_p99"] < 1.0
    assert total["Ch-FairShare_norm_p99"] < 1.0
    assert total["Chameleon_norm_p99"] < 1.0
    # The tuned policy tracks or beats LRU overall (the fine ordering between
    # cache policies is a second-order effect; see EXPERIMENTS.md).
    assert total["Chameleon_norm_p99"] <= total["Ch-LRU_norm_p99"] * 1.15
