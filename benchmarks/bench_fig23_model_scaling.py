"""Bench: regenerate Figure 23 (scalability with model size)."""

from repro.experiments.fig23_model_scaling import run


def test_fig23(run_experiment):
    result = run_experiment(run, duration=90.0)
    models = {row["model"] for row in result.rows}
    assert models == {"llama-7b", "llama-13b", "llama-30b"}
    for row in result.rows:
        # Chameleon's P99 never exceeds S-LoRA's for any model/load.
        assert row["norm_p99"] <= 1.05
    # Throughput ratios > 1 for every model (paper: 1.86/1.41/1.67x).
    for model in models:
        ratios = [row["throughput_ratio"] for row in result.rows
                  if row["model"] == model]
        assert ratios[0] > 1.0
