"""Bench: regenerate Figure 24 (scalability with GPU memory size)."""

from repro.experiments.fig24_memory_scaling import run


def test_fig24(run_experiment):
    result = run_experiment(run, duration=90.0, loads=(4.0, 8.0, 12.0))
    llama7b = [row for row in result.rows if row["model"] == "llama-7b"]
    assert len(llama7b) == 3   # 24, 48, 80 GB
    for row in result.rows:
        assert row["throughput_ratio"] >= 0.95
    # The advantage grows (or at least does not shrink) with memory:
    # more idle bytes -> more adapter cache (paper: 1.4x -> 1.6x -> 1.9x).
    ratios = [row["throughput_ratio"] for row in llama7b]
    assert ratios[-1] >= ratios[0] - 0.1
