"""Bench: elastic fleet control plane (autoscaling + observed capability).

Tier-1-safe smoke benchmarks that pin the two headline claims of the
elastic control plane at reduced scale:

* fig28: on a bursty trace, the autoscaled fleet recovers SLO attainment
  (far above the min-sized static fleet) at strictly fewer replica-seconds
  than the peak-sized static fleet — and wins on goodput per
  replica-second.
* abl_capability_estimator: with a degraded replica that spec capability
  cannot see, observed-rate routing weights beat spec weights on tail TTFT.
"""

from repro.experiments.abl_capability_estimator import run as run_capability
from repro.experiments.fig28_autoscale import run as run_autoscale


def test_autoscale_recovers_slo_at_fewer_replica_seconds(run_experiment):
    result = run_experiment(run_autoscale, duration=200.0)
    by_fleet = {row["fleet"]: row for row in result.rows}
    static_min = by_fleet["static-min"]
    static_peak = by_fleet["static-peak"]
    autoscaled = by_fleet["autoscaled"]
    # The elastic fleet actually scaled (both directions).
    assert autoscaled["scale_out"] > 0
    assert autoscaled["scale_in"] > 0
    # Recovery: attainment far above the min fleet, approaching the peak.
    assert autoscaled["slo_attainment"] > static_min["slo_attainment"] + 0.1
    assert autoscaled["slo_attainment"] > 0.9
    # The bill: strictly fewer replica-seconds than the peak-sized fleet,
    # and the best goodput per replica-second of the three.
    assert autoscaled["replica_seconds"] < static_peak["replica_seconds"]
    assert autoscaled["goodput_per_rs"] > static_peak["goodput_per_rs"]


def test_observed_capability_beats_spec_on_degraded_replica(run_experiment):
    # Full default duration: the degraded replica's tail divergence needs
    # the whole trace to compound (the run is sub-second anyway).
    result = run_experiment(run_capability)
    rows = {row["estimator"]: row for row in result.rows}
    assert rows["observed"]["p99_ttft_s"] < rows["spec"]["p99_ttft_s"]
    assert rows["observed"]["mean_ttft_s"] < rows["spec"]["mean_ttft_s"]
