"""Bench: predictive scale-out (forecast-driven autoscaling).

Tier-1-safe smoke benchmark pinning the fig29 headline at reduced scale:
on a bursty trace, the forecast-driven controller provisions *ahead* of the
periodic burst (seasonal phase histogram + trend over the arrival-rate
window) and thereby cuts the burst-window p99 TTFT and the shed rate versus
the purely reactive controller, at comparable replica-seconds — the
predictive fleet pays for foresight, never more than 10% extra bill.
"""

from repro.experiments.fig29_predictive_autoscale import run as run_predictive


def test_predictive_beats_reactive_on_burst_tail(run_experiment):
    result = run_experiment(run_predictive, duration=200.0)
    by_mode = {row["mode"]: row for row in result.rows}
    reactive = by_mode["reactive"]
    predictive = by_mode["predictive"]
    # The forecaster actually drove provisioning (not just the reactive net).
    assert predictive["predictive_out"] > 0
    assert reactive["predictive_out"] == 0
    # The headline: same-or-better SLO attainment with a lower burst-window
    # tail and a lower shed rate — the burst meets warm replicas.
    assert predictive["slo_attainment"] >= reactive["slo_attainment"]
    assert predictive["burst_p99_ttft_s"] < reactive["burst_p99_ttft_s"]
    assert predictive["shed_rate"] < reactive["shed_rate"]
    # The bill: foresight costs at most 10% extra replica-seconds.
    assert predictive["replica_seconds"] <= 1.10 * reactive["replica_seconds"]
