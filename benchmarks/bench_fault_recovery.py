"""Bench: fault-tolerant serving (crash recovery + self-healing).

Tier-1-safe smoke benchmark pinning the fig30 headline at reduced scale: a
replica crash mid-burst strands work and degrades SLO attainment when
nothing recovers it, while work migration plus self-healing replacement
recovers the no-fault service level with ~zero lost requests — and the
replacement lands one detection tick plus one cold start after the crash,
not a demand-cooldown later.
"""

from repro.experiments.fig30_fault_recovery import run as run_fault_recovery


def test_self_healing_recovers_slo_with_zero_lost(run_experiment):
    result = run_experiment(run_fault_recovery, duration=200.0)
    by_variant = {row["variant"]: row for row in result.rows}
    no_fault = by_variant["no-fault"]
    no_recovery = by_variant["no-recovery"]
    migration = by_variant["migration"]
    healed = by_variant["self-heal+migration"]
    # The baseline actually suffers: stranded requests and lower attainment.
    assert no_recovery["lost"] > 0
    assert no_recovery["availability"] < 1.0
    assert no_recovery["slo_attainment"] < no_fault["slo_attainment"]
    # Migration alone already recovers the stranded work...
    assert migration["lost"] == 0
    assert migration["migrated"] > 0
    # ...and with self-healing on top the service level comes back too.
    assert healed["lost"] == 0
    assert healed["availability"] == 1.0
    assert healed["slo_attainment"] >= 0.95
    assert healed["slo_attainment"] > no_recovery["slo_attainment"]
    # Replacement is prompt: one detection tick + the provisioning cold
    # start (5s here), with slack for tick alignment — not a cooldown wait.
    assert healed["self_heal"] == 1
    assert healed["recovery_s"] <= 10.0
