"""Bench: regenerate Figure 21 (Splitwise / WildChat / LMSYS traces)."""

from repro.experiments.fig21_traces import run


def test_fig21(run_experiment):
    result = run_experiment(run, duration=90.0)
    assert len(result.rows) == 3
    for row in result.rows:
        # Chameleon improves P99 on every trace without re-tuning.
        assert row["chameleon_p99_s"] <= row["slora_p99_s"]
    # And meets the per-trace SLO wherever S-LoRA does.
    for row in result.rows:
        if row["slora_meets_slo"]:
            assert row["chameleon_meets_slo"]
