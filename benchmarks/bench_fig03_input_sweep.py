"""Bench: regenerate Figure 3 (TTFT vs input size per rank)."""

from repro.experiments.fig03_input_sweep import run


def test_fig03(run_experiment):
    result = run_experiment(run)
    # Rank impact grows with input size (the paper's observation).
    first, last = result.rows[0], result.rows[-1]
    assert (last["ttft_r128_s"] - last["ttft_r8_s"]) > (
        first["ttft_r128_s"] - first["ttft_r8_s"])
    for row in result.rows:
        assert row["ttft_r8_s"] < row["ttft_r32_s"] < row["ttft_r128_s"]
