"""Bench: regenerate Figure 11 (P99 TTFT vs load; the throughput headline)."""

from repro.experiments.fig11_p99_ttft_load import run


def test_fig11(run_experiment):
    result = run_experiment(run, duration=90.0, loads=(6.0, 9.0, 12.0))
    by_rps = {row["rps"]: row for row in result.rows}
    # At high load, full Chameleon beats S-LoRA on P99 TTFT by a wide margin.
    high = by_rps[9.0]
    assert high["chameleon_p99_s"] < 0.6 * high["slora_p99_s"]
    # The cache-only ablation also beats S-LoRA; the scheduler-only ablation
    # tracks S-LoRA closely (paper: 1.2x vs 1.05x throughput).
    assert high["chameleon_nosched_p99_s"] < high["slora_p99_s"]
    # Throughput ratio appears in the notes.
    assert any("throughput" in note for note in result.notes)
