"""Bench: regenerate Figure 18 (histogram-driven prefetching)."""

from repro.experiments.fig18_prefetch import run


def test_fig18(run_experiment):
    result = run_experiment(run, duration=120.0)
    total = next(row for row in result.rows if row["rank"] == "total")
    assert total["Chameleon_norm_p99"] < 1.0
    # Prefetching never hurts materially and usually helps (paper: -8.8%).
    assert total["Chameleon+Prefetch_norm_p99"] <= total["Chameleon_norm_p99"] * 1.1
