"""Bench: data-parallel dispatch policies on a small trace (cluster scaling).

Tier-1-safe smoke benchmark: 4 replicas, every dispatch policy, a short
trace — enough to start tracking the perf trajectory of the cluster layer
without the cost of the full ablation sweep.
"""

from repro.experiments.abl_dp_dispatch import run as run_dp
from repro.experiments.fig26_dp_scaling import run as run_scaling
from repro.hardware.cluster import DataParallelCluster


def test_dp_dispatch_all_policies(run_experiment):
    result = run_experiment(
        run_dp, rps=20.0, duration=40.0, n_replicas=4, warmup=5.0,
    )
    assert {row["policy"] for row in result.rows} == set(DataParallelCluster.POLICIES)
    for row in result.rows:
        assert row["p99_ttft_s"] > 0
        assert row["load_imbalance"] >= 1.0
        assert row["p99_qdelay_s"] >= 0.0


def test_dp_scaling_smoke(run_experiment):
    result = run_experiment(
        run_scaling, rps_per_replica=6.0, duration=40.0,
        replica_counts=(1, 2, 4), warmup=5.0,
    )
    # Completed throughput grows with the cluster.
    rps = [row["completed_rps"] for row in result.rows]
    assert rps[-1] > rps[0]
