"""Bench: data-parallel dispatch policies on a small trace (cluster scaling).

Tier-1-safe smoke benchmark: 4 replicas, every dispatch policy, a short
trace — enough to start tracking the perf trajectory of the cluster layer
without the cost of the full ablation sweep.  The SLO-admission and
heterogeneous-fleet smokes additionally pin the two headline claims: shed /
deprioritize beat no-admission goodput past the knee, and capability-
normalized routing beats raw-backlog routing on a mixed-spec fleet.
"""

from repro.experiments.abl_dp_dispatch import run as run_dp
from repro.experiments.abl_slo_admission import run as run_slo
from repro.experiments.fig26_dp_scaling import run as run_scaling
from repro.experiments.fig27_hetero_cluster import run as run_hetero
from repro.hardware.cluster import DataParallelCluster


def test_dp_dispatch_all_policies(run_experiment):
    result = run_experiment(
        run_dp, rps=20.0, duration=40.0, n_replicas=4, warmup=5.0,
    )
    assert {row["policy"] for row in result.rows} == set(DataParallelCluster.POLICIES)
    for row in result.rows:
        assert row["p99_ttft_s"] > 0
        assert row["load_imbalance"] >= 1.0
        assert row["p99_qdelay_s"] >= 0.0


def test_dp_scaling_smoke(run_experiment):
    result = run_experiment(
        run_scaling, rps_per_replica=6.0, duration=40.0,
        replica_counts=(1, 2, 4), warmup=5.0,
    )
    # Completed throughput grows with the cluster.
    rps = [row["completed_rps"] for row in result.rows]
    assert rps[-1] > rps[0]


def test_slo_admission_smoke(run_experiment):
    """Past the knee, shed and deprioritize beat no-admission goodput."""
    result = run_experiment(
        run_slo, rps=30.0, duration=40.0, n_replicas=2, warmup=5.0,
    )
    by_mode = {row["mode"]: row for row in result.rows}
    assert by_mode["shed"]["goodput_rps"] > by_mode["none"]["goodput_rps"]
    assert by_mode["deprioritize"]["goodput_rps"] > by_mode["none"]["goodput_rps"]
    assert by_mode["shed"]["shed"] > 0
    assert by_mode["deprioritize"]["deprioritized"] > 0
    # Shedding bounds the tail of what is actually served.
    assert by_mode["shed"]["p99_ttft_s"] < by_mode["none"]["p99_ttft_s"]


def test_hetero_cluster_smoke(run_experiment):
    """Capability-normalized JSQ/p2c beat raw routing on a mixed fleet."""
    result = run_experiment(
        run_hetero, rps=44.0, duration=50.0, warmup=10.0,
    )
    for policy in ("least_loaded", "p2c"):
        rows = {row["normalized"]: row for row in result.rows
                if row["policy"] == policy}
        assert rows[True]["p99_ttft_s"] < rows[False]["p99_ttft_s"]
