"""Hot-path throughput benchmark: the simulator's events/sec trajectory.

Drives the full dispatch -> engine -> finish -> drain pipeline with a large
light-request trace (tiny prefill/decode so per-event bookkeeping, not the
cost model, dominates) over a wide data-parallel fleet — the configuration
where per-probe linear work in the cluster layer hurts most.  Reports
events/sec, wall-clock, and peak RSS; optionally times the headline figure
experiments in ``--quick`` mode and emits everything as JSON.

Usage:
    PYTHONPATH=src python benchmarks/bench_hotpath.py                 # full (1M requests)
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke         # CI-sized run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke --check-min 15000
    PYTHONPATH=src python benchmarks/bench_hotpath.py --json BENCH_hotpath.json \
        --baseline /tmp/bench_baseline.json --figs

``--check-min`` exits non-zero when events/sec lands below the pinned
threshold — the CI perf gate.  ``--baseline`` embeds a previous ``--json``
output (e.g. measured on the pre-optimization tree with this same harness)
and records the speedup against it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.serving.region import RegionConfig, ServingRegion
from repro.serving.replica import MultiReplicaSystem
from repro.workload.request import Request

#: Headline figures timed by --figs (quick mode, one subprocess each).
HEADLINE_FIGS = (
    "fig26",
    "fig27",
    "fig28_autoscale",
    "fig29_predictive_autoscale",
    "fig30_fault_recovery",
)

#: CI smoke gate: optimized runs clear this with wide margin even on slow
#: shared runners; the pre-optimization hot path cannot reach it.
SMOKE_MIN_EVENTS_PER_SEC = 15_000.0

#: Region-scale sweep: total replicas per point (spread over
#: ``REGION_SHARDS`` dispatcher shards).  The 1024-replica point is the
#: sub-linear-dispatch demonstration — the same fleet is also run with
#: ``dispatch_index=False`` as the linear-scan baseline.
REGION_REPLICA_SWEEP = (64, 256, 1024)
REGION_SHARDS = 8

#: CI gate for the 1024-replica indexed region point: the sharded O(log n)
#: control plane clears this with margin even on slow shared runners
#: (locally ~66k events/s, and the hotpath gate's history pins CI at
#: roughly a quarter of local); the monolithic linear-scan baseline
#: (~42k local) cannot reach it there.
SMOKE_MIN_REGION_EVENTS_PER_SEC = 18_000.0


def build_trace(n_requests: int, rps: float, seed: int = 7) -> list:
    """A light Poisson trace: 32-token prefill, 4-token decode, no adapters."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rps, size=n_requests))
    return [
        Request(request_id=i, arrival_time=float(arrivals[i]),
                input_tokens=32, output_tokens=4)
        for i in range(n_requests)
    ]


def run_hotpath(n_requests: int, rps: float, n_replicas: int,
                traced: bool = False) -> dict:
    requests = build_trace(n_requests, rps)
    system = MultiReplicaSystem.build(
        "slora", n_replicas=n_replicas, dispatch_policy="least_loaded",
        predictor_accuracy=None, seed=0,
    )
    tracer = None
    if traced:
        from repro.obs import Tracer
        tracer = Tracer()
        system.attach_tracer(tracer)
    # Sweep garbage from setup (and, under --repeat, from prior runs) so
    # every timed section starts from the same heap state.
    gc.collect()
    start = time.perf_counter()
    system.run_trace(requests)
    elapsed = time.perf_counter() - start
    events = system.sim.processed_events
    finished = sum(1 for r in requests if r.finished)
    if finished != n_requests:
        raise RuntimeError(
            f"bench trace did not complete: {finished}/{n_requests} finished")
    # ru_maxrss is KiB on Linux.
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    record = {
        "n_requests": n_requests,
        "rps": rps,
        "n_replicas": n_replicas,
        "events": events,
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
    }
    if tracer is not None:
        record["traced"] = True
        record["spans"] = len(tracer.spans)
    return record


def run_region_scale(n_requests: int, total_replicas: int, *,
                     n_shards: int = REGION_SHARDS,
                     dispatch_index: bool = True,
                     rps: float = 16_000.0) -> dict:
    """One region-scale point: ``total_replicas`` behind ``n_shards``
    dispatcher shards.

    The offered load is *constant* across fleet widths: the sweep isolates
    the per-arrival dispatch cost as the fleet grows under identical work.
    A linear-scan dispatcher pays O(fleet) per pick, so its events/sec
    collapses with width; the O(log n) indices hold events/sec roughly
    flat — that flatness is the sub-linear-dispatch evidence the CI gate
    pins."""
    requests = build_trace(n_requests, rps)
    region = ServingRegion.build(
        "slora", n_replicas=total_replicas // n_shards,
        dispatch_policy="least_loaded", predictor_accuracy=None, seed=0,
        dispatch_index=dispatch_index,
        region=RegionConfig(n_shards=n_shards),
    )
    start = time.perf_counter()
    region.run_trace(requests)
    elapsed = time.perf_counter() - start
    events = region.sim.processed_events
    finished = sum(1 for r in requests if r.finished)
    if finished != n_requests:
        raise RuntimeError(
            f"region bench did not complete: {finished}/{n_requests} finished")
    return {
        "n_requests": n_requests,
        "total_replicas": total_replicas,
        "n_shards": n_shards,
        "dispatch_index": dispatch_index,
        "cross_shard_spills": region.stats.cross_shard_spills,
        "cross_shard_steals": region.stats.steals,
        "events": events,
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
    }


def run_region_sweep(n_requests: int) -> list:
    """The replica-count scaling sweep plus the widest point's baseline: the
    pre-region control plane (one monolithic dispatcher, linear-scan
    dispatch) over the same 1024-replica fleet — the sub-linear-dispatch
    evidence the CI gate pins."""
    points = []
    for total in REGION_REPLICA_SWEEP:
        point = run_region_scale(n_requests, total)
        points.append(point)
        print(f"region: {total} replicas x {point['n_shards']} shards "
              f"(indexed) -> {point['events_per_sec']:,.0f} events/s")
    baseline = run_region_scale(n_requests, REGION_REPLICA_SWEEP[-1],
                                n_shards=1, dispatch_index=False)
    points.append(baseline)
    print(f"baseline: {baseline['total_replicas']} replicas, 1 dispatcher, "
          f"linear scan -> {baseline['events_per_sec']:,.0f} events/s "
          f"(region is "
          f"{points[-2]['events_per_sec'] / baseline['events_per_sec']:.1f}x)")
    return points


def time_headline_figs() -> dict:
    """Wall-clock of each headline figure experiment in --quick mode."""
    timings = {}
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    for exp in HEADLINE_FIGS:
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro.cli", exp, "--quick"],
            check=True, env=env, stdout=subprocess.DEVNULL,
        )
        timings[exp] = round(time.perf_counter() - start, 2)
    return timings


def _print_profile(profiler, top_n: int, json_path=None) -> None:
    """Print the top-N cumulative functions and persist the raw stats.

    The binary dump lands next to the ``--json`` artifact (or in the
    working directory without one) so it survives the run for snakeviz /
    ``pstats`` digging — the printed top-N alone is not enough to chase
    a regression after the fact.
    """
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top_n)
    if json_path:
        prof_path = os.path.splitext(json_path)[0] + ".prof"
    else:
        prof_path = "bench_hotpath.prof"
    profiler.dump_stats(prof_path)
    print(f"wrote profile to {prof_path} "
          f"(inspect with python -m pstats {prof_path})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1_000_000)
    parser.add_argument("--rps", type=float, default=16_000.0)
    parser.add_argument("--replicas", type=int, default=64)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (100k requests)")
    parser.add_argument("--check-min", type=float, default=None, metavar="EV_S",
                        help="exit non-zero below this events/sec")
    parser.add_argument("--figs", action="store_true",
                        help="also time the headline figures in --quick mode")
    parser.add_argument("--profile", type=int, default=None, metavar="N",
                        help="run under cProfile and print the top N "
                             "functions by cumulative time")
    parser.add_argument("--region", action="store_true",
                        help="run the region-scale replica sweep (64..1024 "
                             "replicas + linear-scan baseline) instead of "
                             "the single hotpath point")
    parser.add_argument("--check-min-region", type=float, default=None,
                        metavar="EV_S",
                        help="exit non-zero when the widest indexed region "
                             "point lands below this events/sec")
    parser.add_argument("--traced", action="store_true",
                        help="re-run the hotpath point with a repro.obs "
                             "Tracer attached and record the overhead delta")
    parser.add_argument("--check-max-overhead", type=float, default=None,
                        metavar="PCT",
                        help="with --traced: exit non-zero when tracing "
                             "costs more than PCT%% throughput")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the hotpath point (and the --traced "
                             "re-run) N times and keep the fastest of "
                             "each — damps shared-runner noise when "
                             "gating on the overhead delta")
    parser.add_argument("--baseline", type=str, default=None,
                        help="previous --json output to compute speedup against")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="write the result record to PATH")
    args = parser.parse_args()

    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()

    if args.region:
        region_n = 60_000 if args.smoke else 200_000
        if profiler is not None:
            profiler.enable()
        points = run_region_sweep(region_n)
        if profiler is not None:
            profiler.disable()
            _print_profile(profiler, args.profile, args.json)
        result = {
            "region": points,
            "ci_gate": {
                "smoke_requests": 60_000,
                "min_events_per_sec": SMOKE_MIN_REGION_EVENTS_PER_SEC,
            },
        }
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        threshold = args.check_min_region
        if threshold is not None:
            widest = next(
                p for p in points
                if p["dispatch_index"]
                and p["total_replicas"] == REGION_REPLICA_SWEEP[-1])
            if widest["events_per_sec"] < threshold:
                print(f"FAIL: {widest['events_per_sec']:,.0f} events/s at "
                      f"{widest['total_replicas']} replicas is below the "
                      f"pinned minimum {threshold:,.0f}", file=sys.stderr)
                return 1
        return 0

    n = 100_000 if args.smoke else args.requests
    repeats = max(1, args.repeat)

    def best_of(run) -> dict:
        # Fastest of N runs: elapsed-time noise on shared runners is
        # strictly additive, so the minimum is the least-polluted sample.
        best = None
        for _ in range(repeats):
            record = run()
            if best is None or record["events_per_sec"] > best["events_per_sec"]:
                best = record
        if repeats > 1:
            best["repeats"] = repeats
        return best

    if profiler is not None:
        profiler.enable()
    result = {"hotpath": best_of(
        lambda: run_hotpath(n, args.rps, args.replicas))}
    if profiler is not None:
        profiler.disable()
        _print_profile(profiler, args.profile, args.json)
    hp = result["hotpath"]
    print(f"hotpath: {hp['n_requests']:,} requests over {hp['n_replicas']} "
          f"replicas -> {hp['events']:,} events in {hp['elapsed_s']}s "
          f"= {hp['events_per_sec']:,.0f} events/s "
          f"(peak RSS {hp['peak_rss_mb']:.0f} MB)")

    if args.traced:
        traced = best_of(
            lambda: run_hotpath(n, args.rps, args.replicas, traced=True))
        overhead_pct = round(
            100.0 * (1.0 - traced["events_per_sec"] / hp["events_per_sec"]),
            1)
        traced["overhead_pct"] = overhead_pct
        result["traced"] = traced
        print(f"traced:  {traced['events']:,} events in "
              f"{traced['elapsed_s']}s = {traced['events_per_sec']:,.0f} "
              f"events/s ({traced['spans']:,} spans, "
              f"overhead {overhead_pct:+.1f}%)")

    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)["hotpath"]
        result["baseline"] = base
        result["speedup"] = round(
            hp["events_per_sec"] / base["events_per_sec"], 2)
        print(f"baseline: {base['events_per_sec']:,.0f} events/s "
              f"-> speedup {result['speedup']}x")

    if args.figs:
        result["headline_fig_quick_wall_s"] = time_headline_figs()
        for exp, secs in result["headline_fig_quick_wall_s"].items():
            print(f"{exp} --quick: {secs}s")

    result["ci_gate"] = {
        "smoke_requests": 100_000,
        "min_events_per_sec": SMOKE_MIN_EVENTS_PER_SEC,
    }

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    threshold = args.check_min
    if threshold is not None and hp["events_per_sec"] < threshold:
        print(f"FAIL: {hp['events_per_sec']:,.0f} events/s is below the "
              f"pinned minimum {threshold:,.0f}", file=sys.stderr)
        return 1
    if args.check_max_overhead is not None:
        if "traced" not in result:
            print("FAIL: --check-max-overhead needs --traced",
                  file=sys.stderr)
            return 1
        if result["traced"]["overhead_pct"] > args.check_max_overhead:
            print(f"FAIL: tracing overhead "
                  f"{result['traced']['overhead_pct']:.1f}% exceeds the "
                  f"pinned maximum {args.check_max_overhead:.1f}%",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
