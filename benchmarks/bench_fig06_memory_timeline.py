"""Bench: regenerate Figure 6 (GPU memory usage over time)."""

from repro.experiments.fig06_memory_timeline import run


def test_fig06(run_experiment):
    result = run_experiment(run, duration=120.0, sample_interval=2.0)
    assert len(result.rows) >= 20
    for row in result.rows:
        assert row["base_llm_gb"] <= row["base_plus_kv_gb"] <= row["total_used_gb"]
        assert row["total_used_gb"] <= row["capacity_gb"] + 1e-9
    # The paper's point: idle memory exists most of the time.
    idle = [row["idle_gb"] for row in result.rows]
    assert sorted(idle)[len(idle) // 2] > 1.0
