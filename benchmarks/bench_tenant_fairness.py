"""Bench: multi-tenant fairness under a hot-tenant storm.

Tier-1-safe smoke benchmarks that pin the two headline claims of the
tenant-fairness layer at reduced scale:

* fig32: when one tenant floods the fleet, weighted-fair admission
  (per-tenant DRR lanes + token-bucket quotas) holds every victim
  tenant's SLO attainment near 1.0 while pure-goodput admission pays the
  storm out of the victims' deadlines.
* The fairness machinery is pay-for-what-you-use: with no
  ``TenantFairnessPolicy`` attached, the dispatcher hot path still clears
  the CI throughput gate recorded in ``BENCH_hotpath.json`` — adding the
  tenant layer did not tax the anonymous path.

Set ``BENCH_TENANT_FAIRNESS_JSON=<path>`` to record the storm headline
numbers as a JSON artifact (CI uploads it).
"""

import json
import os
import pathlib
import time

from bench_hotpath import run_hotpath

from repro.experiments.fig32_tenant_fairness import run as run_storm

#: Reduced-scale storm window (the fig32 --quick shape): long enough for
#: the storm to saturate the fleet and for victims to feel it.
QUICK = dict(duration=90.0, storm_start=35.0, storm_duration=30.0)

#: The weighted-fair floor under the storm, and the ceiling the
#: pure-goodput baseline demonstrably fails: the gap is the headline.
FAIR_VICTIM_FLOOR = 0.95
GOODPUT_VICTIM_CEILING = 0.8


def test_weighted_fair_holds_victims_through_the_storm(run_experiment):
    result = run_experiment(run_storm, **QUICK)
    rows = {row["variant"]: row for row in result.rows}
    fair = rows["weighted_fair"]
    goodput = rows["goodput"]

    # The storm actually bites: without quotas the worst victim tenant
    # loses a deadline-sized chunk of its attainment ...
    assert goodput["victim_min_attainment"] < GOODPUT_VICTIM_CEILING
    # ... while weighted-fair admission holds every victim at the floor
    # and charges the wait to the storm lane instead.
    assert fair["victim_min_attainment"] >= FAIR_VICTIM_FLOOR
    assert fair["quota_throttles"] > 0
    # Fairness across tenants improves, and the fleet-wide tail collapses
    # (under goodput admission every tenant's p99 sits behind the storm).
    assert fair["fairness_jain"] > goodput["fairness_jain"]
    assert fair["p99_ttft_s"] < goodput["p99_ttft_s"]

    artifact = os.environ.get("BENCH_TENANT_FAIRNESS_JSON")
    if artifact:
        payload = {
            "params": QUICK,
            "ci_gate": {
                "fair_victim_floor": FAIR_VICTIM_FLOOR,
                "goodput_victim_ceiling": GOODPUT_VICTIM_CEILING,
            },
            "variants": rows,
        }
        pathlib.Path(artifact).write_text(json.dumps(payload, indent=2,
                                                     sort_keys=True))


def test_fairness_off_hotpath_clears_recorded_gate():
    """Anonymous traffic through the post-tenancy dispatcher still meets
    the pinned hot-path throughput gate: the fairness machinery costs
    nothing when no policy is attached."""
    gate = json.loads(
        (pathlib.Path(__file__).resolve().parents[1]
         / "BENCH_hotpath.json").read_text())["ci_gate"]
    point = run_hotpath(n_requests=int(gate["smoke_requests"]),
                        rps=16000.0, n_replicas=64)
    print(f"\nfairness-off hot path: {point['events_per_sec']:,.0f} "
          f"events/s (gate {gate['min_events_per_sec']:,.0f})")
    assert point["events_per_sec"] >= gate["min_events_per_sec"]


def test_tenant_lanes_keep_storm_run_interactive():
    """Guardrail on the fairness machinery's own cost: the full fig32
    storm (two variants, ~20k requests) stays a few-second smoke run."""
    start = time.perf_counter()
    run_storm(**QUICK)
    elapsed = time.perf_counter() - start
    print(f"\nfig32 quick pair: {elapsed:.1f}s wall")
    assert elapsed < 120.0
