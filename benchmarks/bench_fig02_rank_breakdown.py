"""Bench: regenerate Figure 2 (TTFT breakdown vs adapter rank)."""

import pytest

from repro.experiments.fig02_rank_breakdown import PAPER_TTFT_MS, run


def test_fig02(run_experiment):
    result = run_experiment(run)
    for row in result.rows:
        assert row["ttft_ms"] == pytest.approx(PAPER_TTFT_MS[row["rank"]], rel=0.03)
    rank128 = result.rows[-1]
    assert rank128["load_share"] == pytest.approx(0.175, abs=0.02)
