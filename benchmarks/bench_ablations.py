"""Benches: the ablation experiments (design choices + modeling assumptions)."""

from repro.experiments.abl_dp_dispatch import run as run_dp
from repro.experiments.abl_eviction_weights import run as run_weights
from repro.experiments.abl_gdsf import run as run_gdsf
from repro.experiments.abl_load_stall import run as run_stall
from repro.experiments.abl_wrs_degree import run as run_wrs


def test_abl_wrs_degree(run_experiment):
    result = run_experiment(run_wrs, duration=90.0, loads=(9.0, 11.0))
    for row in result.rows:
        # The degree-2 polynomial is never much worse than the linear one...
        assert row["chameleon_p99_s"] <= row["linear_p99_s"] * 1.25
        # ...and both full formulas dominate the output-only ablation or tie.
        assert row["chameleon_p99_s"] <= row["output_only_p99_s"] * 1.25


def test_abl_eviction_weights(run_experiment):
    result = run_experiment(run_weights, duration=60.0, grid_step=0.5)
    # Simplex grid with step 0.5 has 6 points, plus the paper's point.
    assert len(result.rows) == 7
    for row in result.rows:
        assert abs(row["f_weight"] + row["r_weight"] + row["s_weight"] - 1.0) < 1e-9
        assert row["p99_ttft_s"] > 0
    # The paper's weighting sits within 30% of the grid optimum.
    best = min(row["p99_ttft_s"] for row in result.rows[:-1])
    paper = result.rows[-1]["p99_ttft_s"]
    assert paper <= best * 1.3


def test_abl_gdsf(run_experiment):
    result = run_experiment(run_gdsf, duration=90.0)
    rows = {row["system"]: row for row in result.rows}
    # Any cache is far better than none; Chameleon at least matches GDSF's
    # order of magnitude (the paper has Chameleon substantially ahead).
    assert rows["Chameleon"]["p99_ttft_s"] < 0.7 * rows["S-LoRA"]["p99_ttft_s"]
    assert rows["Chameleon"]["p99_ttft_s"] <= rows["Ch-GDSF"]["p99_ttft_s"] * 1.2


def test_abl_load_stall(run_experiment):
    result = run_experiment(run_stall, duration=90.0, bandwidths=(None, 3.0, 1.5))
    # With fully-async copies the two systems are close (the cache's residual
    # benefit is the critical-path wait); costlier copies open the gap.
    for row in result.rows:
        assert row["advantage"] > 0.8
    assert result.rows[-1]["advantage"] > 1.5
    assert result.rows[-1]["advantage"] > result.rows[0]["advantage"]


def test_abl_dp_dispatch(run_experiment):
    result = run_experiment(run_dp, duration=90.0)
    rows = {row["policy"]: row for row in result.rows}
    # Affinity routing yields the best per-replica hit rates.
    assert rows["adapter_affinity"]["mean_hit_rate"] >= rows["round_robin"]["mean_hit_rate"]
    # Round-robin is the most balanced.
    assert rows["round_robin"]["load_imbalance"] <= rows["adapter_affinity"]["load_imbalance"] + 0.05
