"""Bench: regenerate Figure 20 (adapter count and popularity sensitivity)."""

from repro.experiments.fig20_adapter_sensitivity import run


def test_fig20(run_experiment):
    result = run_experiment(run, duration=90.0, pool_sizes=(10, 100, 200))
    pool_rows = [row for row in result.rows if "n_adapters" in row]
    grid_rows = [row for row in result.rows if "distribution" in row]
    assert len(pool_rows) == 3 and len(grid_rows) == 3
    # Chameleon beats S-LoRA at every pool size under both rank popularities.
    for row in pool_rows:
        assert row["cham_uni_p99_s"] <= row["slora_uni_p99_s"]
        assert row["cham_pow_p99_s"] <= row["slora_pow_p99_s"]
    # More adapters hurt S-LoRA more than Chameleon.
    s_growth = pool_rows[-1]["slora_uni_p99_s"] / pool_rows[0]["slora_uni_p99_s"]
    c_growth = pool_rows[-1]["cham_uni_p99_s"] / pool_rows[0]["cham_uni_p99_s"]
    assert s_growth > c_growth * 0.9
    # Chameleon wins in every popularity configuration.
    for row in grid_rows:
        assert row["cham_norm"] <= row["slora_norm"]
