"""Bench: regenerate Figure 7 (isolated TTFT/E2E CDFs, base vs LoRA)."""

from repro.experiments.fig07_serial_cdf import run


def test_fig07(run_experiment):
    result = run_experiment(run, n_requests=600)
    p50 = next(r for r in result.rows if r["percentile"] == 50)
    p99 = next(r for r in result.rows if r["percentile"] == 99)
    # Heavy tail: P99 well above P50.
    assert p99["base_e2e_s"] > 3 * p50["base_e2e_s"]
    # Adapters shift every percentile up, and the tail more in absolute terms.
    for row in result.rows:
        assert row["lora_ttft_s"] > row["base_ttft_s"]
        assert row["lora_e2e_s"] > row["base_e2e_s"]
    assert (p99["lora_e2e_s"] - p99["base_e2e_s"]) > (
        p50["lora_e2e_s"] - p50["base_e2e_s"])
