"""Bench: regenerate Figure 15 (P99 TTFT over time by policy)."""

import numpy as np

from repro.experiments.fig15_ttft_timeline import run


def test_fig15(run_experiment):
    result = run_experiment(run, duration=150.0, window=30.0)
    assert len(result.rows) >= 3

    def mean_of(column):
        values = [row[column] for row in result.rows if row[column] is not None]
        return float(np.mean(values))

    # Full Chameleon keeps the windowed tail below both baselines.
    assert mean_of("chameleon_p99_s") < mean_of("slora_p99_s")
    assert mean_of("chameleon_p99_s") < mean_of("slora_sjf_p99_s")
