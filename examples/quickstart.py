#!/usr/bin/env python
"""Quickstart: serve a many-adapter workload with Chameleon vs S-LoRA.

Builds the paper's default environment — Llama-7B on an A40-48GB, 100 LoRA
adapters over ranks {8..128} with power-law popularity — replays the same
synthetic production trace through both systems, and prints the latency
comparison plus cache statistics.

Run:  python examples/quickstart.py
"""

from repro import SPLITWISE_PROFILE, build_system, synthesize_trace
from repro.adapters import AdapterRegistry
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams


def main() -> None:
    # 1. A pool of 100 adapters: equal counts of ranks 8/16/32/64/128.
    registry = AdapterRegistry.build(LLAMA_7B, n_adapters=100)

    # 2. A Splitwise-like trace: 9 requests/s for five simulated minutes,
    #    heavy-tailed lengths, power-law adapter popularity.
    rng = RngStreams(seed=42)
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=9.0, duration=300.0,
        rng=rng.get("trace"), registry=registry,
    )
    print(f"trace: {len(trace)} requests, "
          f"mean input {trace.mean_input_tokens:.0f} tokens, "
          f"mean output {trace.mean_output_tokens:.0f} tokens")

    # 3. Replay the same trace against both systems (paired comparison).
    for preset in ("slora", "chameleon"):
        system = build_system(preset, registry=registry, seed=42)
        system.run_trace(trace.fresh())
        summary = system.summary(warmup=30.0)
        stats = system.adapter_manager.stats
        print(f"\n=== {preset} ===")
        print(f"  P50 TTFT: {summary.p50_ttft * 1e3:8.1f} ms")
        print(f"  P99 TTFT: {summary.p99_ttft * 1e3:8.1f} ms")
        print(f"  P99 TBT:  {summary.p99_tbt * 1e3:8.1f} ms")
        print(f"  adapter cache hit rate: {stats.hit_rate * 100:.1f}%")
        print(f"  adapter bytes moved over PCIe: "
              f"{system.link.total_bytes_moved / 2**30:.1f} GiB")


if __name__ == "__main__":
    main()
