#!/usr/bin/env python
"""Capacity planning: how much load can one GPU sustain within the SLO?

Scenario: before buying hardware, an operator wants the maximum request rate
a single A40 can serve for a 100-adapter tenant base while keeping P99 TTFT
under 5x the mean isolated latency (the paper's SLO).  We sweep the offered
load for S-LoRA and Chameleon, locate each system's SLO crossing, and report
the provisioning difference — the paper's headline 1.5x.

Run:  python examples/capacity_planning.py   (takes a minute or two)
"""

from repro import build_system, synthesize_trace, SPLITWISE_PROFILE
from repro.adapters import AdapterRegistry
from repro.experiments.common import trace_slo
from repro.llm.model import LLAMA_7B
from repro.metrics.summary import throughput_under_slo
from repro.sim.rng import RngStreams

LOADS = (5.0, 7.0, 9.0, 11.0, 13.0)
DURATION = 180.0


def main() -> None:
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    slo = None
    curves = {"slora": [], "chameleon": []}

    print(f"{'RPS':>5s} {'S-LoRA p99':>12s} {'Chameleon p99':>14s}")
    for rps in LOADS:
        trace = synthesize_trace(
            SPLITWISE_PROFILE, rps=rps, duration=DURATION,
            rng=RngStreams(seed=3).get("trace"), registry=registry,
        )
        if slo is None:
            slo = trace_slo(trace, registry)
        row = []
        for preset in ("slora", "chameleon"):
            system = build_system(preset, registry=registry, seed=3)
            system.run_trace(trace.fresh())
            p99 = system.summary(warmup=20.0).p99_ttft
            curves[preset].append(p99)
            row.append(p99)
        print(f"{rps:5.1f} {row[0] * 1e3:10.0f}ms {row[1] * 1e3:12.0f}ms")

    print(f"\nSLO (5x mean isolated latency): {slo * 1e3:.0f} ms")
    capacity = {
        preset: throughput_under_slo(list(LOADS), curve, slo)
        for preset, curve in curves.items()
    }
    for preset, rps in capacity.items():
        print(f"max sustainable load ({preset}): {rps:.1f} RPS")
    if capacity["slora"]:
        ratio = capacity["chameleon"] / capacity["slora"]
        print(f"\n=> one Chameleon GPU does the work of {ratio:.2f} S-LoRA GPUs "
              "(paper: 1.5x)")


if __name__ == "__main__":
    main()
