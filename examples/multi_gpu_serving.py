#!/usr/bin/env python
"""Multi-GPU serving: tensor parallelism and data parallelism (§4.4).

Scenario one — tensor parallelism: Llama-7B sharded over 1/2/4 A100s.
Adapter loads shard across the group (per-shard sync overheads), so S-LoRA's
loading bottleneck grows with the TP degree while Chameleon's sharded cache
sidesteps it.

Scenario two — data parallelism: four independent engines behind the
two-level scheduler, comparing dispatch policies (round-robin vs
least-loaded vs adapter-affinity, which exploits the per-engine caches).

Run:  python examples/multi_gpu_serving.py
"""

from repro import SPLITWISE_PROFILE, build_system, synthesize_trace
from repro.adapters import AdapterRegistry
from repro.hardware.gpu import A100_80GB
from repro.llm.model import LLAMA_7B
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams


def tensor_parallel_demo(registry) -> None:
    print("=== Tensor parallelism (Llama-7B on A100s) ===")
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=14.0, duration=180.0,
        rng=RngStreams(5).get("trace"), registry=registry,
    )
    print(f"{'TP':>3s} {'S-LoRA p99':>12s} {'Chameleon p99':>14s} {'reduction':>10s}")
    for tp in (1, 2, 4):
        p99 = {}
        for preset in ("slora", "chameleon"):
            system = build_system(preset, registry=registry,
                                  gpu=A100_80GB, tp_degree=tp, seed=5)
            system.run_trace(trace.fresh())
            p99[preset] = system.summary(warmup=20.0).p99_ttft
        reduction = 1.0 - p99["chameleon"] / p99["slora"]
        print(f"{tp:3d} {p99['slora'] * 1e3:10.0f}ms "
              f"{p99['chameleon'] * 1e3:12.0f}ms {reduction * 100:9.1f}%")


def data_parallel_demo(registry) -> None:
    print("\n=== Data parallelism (4 replicas, two-level scheduling) ===")
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=30.0, duration=120.0,
        rng=RngStreams(6).get("trace"), registry=registry,
    )
    for policy in ("round_robin", "least_loaded", "p2c", "token_weighted",
                   "adapter_affinity", "bounded_affinity"):
        cluster = MultiReplicaSystem.build(
            "chameleon", n_replicas=4, dispatch_policy=policy,
            registry=registry, seed=6,
        )
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=20.0)
        print(f"{policy:17s} p99={summary.p99_ttft * 1e3:7.0f}ms "
              f"agg cache hit={cluster.aggregate_hit_rate() * 100:5.1f}% "
              f"p99 queue delay={summary.extra['p99_dispatch_queue_delay'] * 1e3:6.1f}ms "
              f"per-replica requests={cluster.per_replica_counts()}")


def main() -> None:
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    tensor_parallel_demo(registry)
    data_parallel_demo(registry)


if __name__ == "__main__":
    main()
