#!/usr/bin/env python
"""Tuning the adapter-cache eviction policy for a skewed tenant base.

Scenario: a serving operator hosts 200 adapters whose popularity is heavily
skewed (a few hot tenants, a long tail), and wants to know which eviction
policy to deploy and how sensitive the compound score's weights are.  We
sweep LRU, FairShare, GDSF and several (F, R, S) weightings of the Chameleon
score, reporting P99 TTFT, cache hit rate and PCIe traffic.

Run:  python examples/cache_policy_tuning.py
"""

from repro import SPLITWISE_PROFILE, build_system, synthesize_trace
from repro.adapters import AdapterRegistry
from repro.core.eviction import ChameleonScorePolicy
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams

PRESET_POLICIES = {
    "LRU": "chameleon_lru",
    "FairShare": "chameleon_fairshare",
    "GDSF": "chameleon_gdsf",
    "Chameleon (tuned)": "chameleon",
}

#: Extra (F, R, S) weightings to probe the compound score's sensitivity.
WEIGHT_SWEEP = [
    (0.8, 0.1, 0.1),   # frequency-dominant
    (0.1, 0.8, 0.1),   # recency-dominant (LRU-like)
    (0.1, 0.1, 0.8),   # size-dominant (cost-only)
]


def report(name: str, system, summary) -> None:
    stats = system.adapter_manager.stats
    print(f"{name:22s} p99={summary.p99_ttft * 1e3:7.0f}ms "
          f"hit={stats.hit_rate * 100:5.1f}% "
          f"evictions={stats.evictions:5d} "
          f"pcie={system.link.total_bytes_moved / 2**30:6.1f}GiB")


def main() -> None:
    registry = AdapterRegistry.build(LLAMA_7B, 200)
    rng = RngStreams(seed=11)
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=9.0, duration=300.0,
        rng=rng.get("trace"), registry=registry,
        adapter_popularity="powerlaw", powerlaw_alpha=1.2,
    )
    print(f"{len(trace)} requests over {len(registry)} adapters "
          "(strong power-law popularity)\n")

    for name, preset in PRESET_POLICIES.items():
        system = build_system(preset, registry=registry, seed=11)
        system.run_trace(trace.fresh())
        report(name, system, system.summary(warmup=30.0))

    print("\ncompound-score weight sweep (F=frequency, R=recency, S=size):")
    for f_weight, r_weight, s_weight in WEIGHT_SWEEP:
        system = build_system("chameleon", registry=registry, seed=11)
        system.adapter_manager.policy = ChameleonScorePolicy(
            f_weight=f_weight, r_weight=r_weight, s_weight=s_weight)
        system.run_trace(trace.fresh())
        report(f"  F={f_weight} R={r_weight} S={s_weight}",
               system, system.summary(warmup=30.0))


if __name__ == "__main__":
    main()
