#!/usr/bin/env python
"""Operator playbook: characterize, tune, validate, report.

The end-to-end workflow an operator adopting Chameleon would run:

1. **Capture** a day's traffic (here: synthesize one) and persist it.
2. **Characterize** it: length percentiles, adapter skew, effective rate.
3. **Tune** the cache's eviction weights offline on the captured trace
   (the §4.2.2 profiling procedure).
4. **Validate** the tuned system against S-LoRA on a held-out trace.
5. **Report**: write a markdown summary for the team.

Run:  python examples/operator_playbook.py   (writes into ./playbook_out/)
"""

from pathlib import Path

from repro import SPLITWISE_PROFILE, build_system, synthesize_trace
from repro.adapters import AdapterRegistry
from repro.core.eviction import ChameleonScorePolicy
from repro.core.tuning import profile_eviction_weights
from repro.experiments.common import ExperimentResult
from repro.experiments.report import render_markdown
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams
from repro.workload.io import load_trace, save_trace, trace_statistics

OUT_DIR = Path("playbook_out")


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    registry = AdapterRegistry.build(LLAMA_7B, 200)

    # 1. Capture: yesterday's traffic, persisted for reproducibility.
    captured = synthesize_trace(
        SPLITWISE_PROFILE, rps=8.0, duration=240.0,
        rng=RngStreams(21).get("capture"), registry=registry,
    )
    trace_path = OUT_DIR / "captured_trace.json"
    save_trace(captured, trace_path)
    print(f"captured {len(captured)} requests -> {trace_path}")

    # 2. Characterize.
    stats = trace_statistics(load_trace(trace_path))
    print(f"  input p50/p99: {stats.p50_input_tokens:.0f}/{stats.p99_input_tokens:.0f} tokens")
    print(f"  output p50/p99: {stats.p50_output_tokens:.0f}/{stats.p99_output_tokens:.0f} tokens")
    print(f"  {stats.distinct_adapters} adapters seen; hottest takes "
          f"{stats.top_adapter_share:.1%} of traffic")

    # 3. Tune the eviction weights on the captured trace.
    tuning = profile_eviction_weights(captured, registry, grid_step=0.5, warmup=20.0)
    f_weight, r_weight, s_weight = tuning.weights
    print(f"tuned eviction weights: F={f_weight} R={r_weight} S={s_weight} "
          f"(P99 {tuning.best.p99_ttft:.2f}s over {len(tuning.candidates)} candidates)")

    # 4. Validate on a held-out trace.
    holdout = synthesize_trace(
        SPLITWISE_PROFILE, rps=9.0, duration=240.0,
        rng=RngStreams(22).get("holdout"), registry=registry,
    )
    rows = []
    for label, preset in (("S-LoRA", "slora"), ("Chameleon (tuned)", "chameleon")):
        system = build_system(preset, registry=registry, seed=22)
        if label.startswith("Chameleon"):
            system.adapter_manager.policy = ChameleonScorePolicy(
                f_weight=f_weight, r_weight=r_weight, s_weight=s_weight)
        system.run_trace(holdout.fresh())
        summary = system.summary(warmup=20.0)
        rows.append({
            "system": label,
            "p50_ttft_s": summary.p50_ttft,
            "p99_ttft_s": summary.p99_ttft,
            "hit_rate": system.adapter_manager.stats.hit_rate,
            "pcie_gib": system.link.total_bytes_moved / 2 ** 30,
        })
        print(f"  {label}: p99 {summary.p99_ttft:.2f}s, "
              f"hit rate {system.adapter_manager.stats.hit_rate:.0%}")

    # 5. Report.
    result = ExperimentResult(
        experiment="playbook-validation",
        description="Held-out validation of tuned Chameleon vs S-LoRA",
        rows=rows,
        params={"holdout_rps": 9.0, "n_adapters": len(registry),
                "tuned_weights": list(tuning.weights)},
        notes=[f"trace statistics: {stats}"],
    )
    report_path = OUT_DIR / "REPORT.md"
    report_path.write_text(render_markdown([result], title="Chameleon rollout validation"))
    print(f"wrote {report_path}")


if __name__ == "__main__":
    main()
