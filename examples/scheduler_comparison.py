#!/usr/bin/env python
"""Scheduling-policy shootout on a bursty multi-tenant workload.

Motivating scenario from the paper's introduction: one inference cluster
serves chat-bot, coding and summarization tenants, whose requests differ
wildly in input/output length and adapter rank.  We compare four
iteration-level schedulers — FIFO, chunked-prefill FIFO, speculative SJF,
and Chameleon's multi-level queue — on tail latency *per request class*,
showing FIFO's head-of-line blocking and SJF's starvation directly.

Run:  python examples/scheduler_comparison.py
"""

import numpy as np

from repro import build_system, synthesize_trace
from repro.adapters import AdapterRegistry
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams
from repro.workload.trace import TraceProfile

POLICIES = {
    "FIFO (S-LoRA)": "slora",
    "Chunked prefill": "slora_chunked",
    "SJF (uServe)": "slora_sjf",
    "Chameleon MLQ": "chameleon_nocache",   # scheduler only: fair comparison
}

# A mixed-tenant profile: heavier tail than the default conversation trace.
MIXED_PROFILE = TraceProfile(
    name="mixed-tenants",
    mean_input_tokens=220.0, mean_output_tokens=24.0,
    input_sigma=1.3, output_sigma=1.3,
    max_input_tokens=4096, max_output_tokens=1024,
)


def size_class(request) -> str:
    tokens = request.input_tokens + request.output_tokens
    if tokens < 200:
        return "small"
    if tokens < 1200:
        return "medium"
    return "large"


def main() -> None:
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    rng = RngStreams(seed=7)
    trace = synthesize_trace(MIXED_PROFILE, rps=10.0, duration=300.0,
                             rng=rng.get("trace"), registry=registry)
    print(f"{len(trace)} requests; class mix:",
          {c: sum(1 for r in trace if size_class(r) == c)
           for c in ("small", "medium", "large")})

    header = f"{'policy':18s} {'class':7s} {'P50 wait':>9s} {'P99 wait':>9s} {'P99 TTFT':>9s}"
    print("\n" + header)
    print("-" * len(header))
    for name, preset in POLICIES.items():
        system = build_system(preset, registry=registry,
                              profile=MIXED_PROFILE, seed=7)
        system.run_trace(trace.fresh())
        done = [r for r in system.engine.all_requests
                if r.finished and r.arrival_time > 30.0]
        for cls in ("small", "medium", "large"):
            members = [r for r in done if size_class(r) == cls]
            waits = [r.queueing_delay for r in members]
            ttfts = [r.ttft for r in members]
            print(f"{name:18s} {cls:7s} "
                  f"{np.percentile(waits, 50) * 1e3:8.0f}ms "
                  f"{np.percentile(waits, 99) * 1e3:8.0f}ms "
                  f"{np.percentile(ttfts, 99) * 1e3:8.0f}ms")
        print()


if __name__ == "__main__":
    main()
